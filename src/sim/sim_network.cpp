#include "sim/sim_network.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <string>

#include "obs/recorder.hpp"

namespace ekm {

namespace {

/// Active trace segment of a site at virtual time t: the last segment
/// whose start has passed, or nullptr while the base radio/fault
/// settings still apply (before the first segment, or no trace at all).
[[nodiscard]] const TraceSegment* trace_segment_at(const Site& site, double t) {
  const TraceSegment* active = nullptr;
  for (const TraceSegment& seg : site.trace) {
    if (seg.start_s > t) break;
    active = &seg;
  }
  return active;
}

}  // namespace

void SimLink::send(Message msg) { net_->do_send(*this, std::move(msg)); }

Message SimLink::receive() {
  std::optional<Message> msg = net_->do_receive_by(*this, kNoRound, kNoDeadline);
  EKM_ENSURES_MSG(msg.has_value(),
                  "blocking receive on a frame that expired (retry budget or "
                  "round deadline) — deadline-aware protocols must use "
                  "receive_by and aggregate over the responders");
  return std::move(*msg);
}

std::optional<Message> SimLink::receive_by(RoundId round, double deadline_cap) {
  return net_->do_receive_by(*this, round, deadline_cap);
}

SimNetwork::SimNetwork(std::size_t num_sites, const SimScenario& scenario)
    : scenario_(scenario),
      overlap_(scenario.round.overlap),
      pipelining_(scenario.round.pipeline) {
  EKM_EXPECTS(num_sites >= 1);
  EKM_EXPECTS(scenario_.radio.bandwidth_bps > 0.0);
  EKM_EXPECTS(scenario_.seconds_per_scalar >= 0.0);
  for (const LinkModel& r : scenario_.radio_cycle) {
    EKM_EXPECTS(r.bandwidth_bps > 0.0);
  }

  // A cold fleet's first round pushes O(sites) events before the first
  // receive drains any; reserving here keeps a 10k-site sweep from
  // growing the heap through a dozen reallocations mid-round.
  queue_.reserve(4 * num_sites);

  sites_.resize(num_sites);
  for (std::size_t i = 0; i < num_sites; ++i) {
    Site& s = sites_[i];
    s.radio = scenario_.radio_cycle.empty()
                  ? scenario_.radio
                  : scenario_.radio_cycle[i % scenario_.radio_cycle.size()];
    s.loss_rate = scenario_.loss_rate;
    s.dropout_rate = scenario_.dropout_rate;
    s.retry = scenario_.retry.strategy;
  }

  // Site heterogeneity, all drawn once from the scenario seed: an
  // optional uniform speed skew per site, then a straggler subset
  // chosen by shuffle and slowed down.
  Rng rng = make_rng(scenario_.seed, 0x517e5ULL);
  if (scenario_.site_speed_skew > 1.0) {
    std::uniform_real_distribution<double> unif(1.0 / scenario_.site_speed_skew,
                                                1.0);
    for (Site& s : sites_) s.compute_speed *= unif(rng);
  }
  if (scenario_.straggler_fraction > 0.0) {
    const auto stragglers = static_cast<std::size_t>(
        std::ceil(scenario_.straggler_fraction * static_cast<double>(num_sites)));
    std::vector<std::size_t> order(num_sites);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t i = 0; i < std::min(stragglers, num_sites); ++i) {
      sites_[order[i]].compute_speed /= scenario_.straggler_slowdown;
    }
  }

  // Per-site overrides come last so they pin exact values — a
  // siteN.speed override wins over the skew/straggler draw above
  // (later overrides win, in declaration order). An override naming a
  // site beyond the fleet is a configuration error: it used to be
  // silently inert, which hid fleet-size typos behind clean runs.
  std::vector<std::optional<double>> join(num_sites);
  std::vector<std::optional<double>> leave(num_sites);
  for (const SiteOverride& o : scenario_.site_overrides) {
    EKM_EXPECTS_MSG(o.site < num_sites,
                    "scenario override '" + o.key + "' names site " +
                        std::to_string(o.site) + " but the fleet has only " +
                        std::to_string(num_sites) + " site(s)");
    Site& s = sites_[o.site];
    if (o.radio) s.radio = *o.radio;
    if (o.bandwidth_bps) s.radio.bandwidth_bps = *o.bandwidth_bps;
    if (o.loss_rate) s.loss_rate = *o.loss_rate;
    if (o.dropout_rate) s.dropout_rate = *o.dropout_rate;
    if (o.compute_speed) s.compute_speed = *o.compute_speed;
    if (o.retry) s.retry = *o.retry;
    if (!o.trace.empty()) s.trace = o.trace;
    if (o.join_s) join[o.site] = o.join_s;
    if (o.leave_s) leave[o.site] = o.leave_s;
  }

  // Merge explicit membership schedules into per-site toggle lists,
  // then arm stochastic churn for the sites no override pinned. A
  // static fleet (no joins, no leaves, churn=0) keeps
  // membership_active_ false, and every membership check short-circuits
  // — zero extra work, zero extra draws, bit-for-bit prior behavior.
  bool any_toggles = false;
  for (std::size_t i = 0; i < num_sites; ++i) {
    Site& s = sites_[i];
    if (join[i] && leave[i]) {
      EKM_EXPECTS_MSG(*join[i] != *leave[i],
                      "site" + std::to_string(i) +
                          ".join and .leave coincide at t=" +
                          std::to_string(*join[i]) +
                          " — membership would be ambiguous");
      if (*join[i] < *leave[i]) {
        s.initial_member = false;
        s.membership_toggles = {*join[i], *leave[i]};
      } else {
        s.membership_toggles = {*leave[i], *join[i]};
      }
    } else if (join[i]) {
      s.initial_member = false;
      s.membership_toggles = {*join[i]};
    } else if (leave[i]) {
      s.membership_toggles = {*leave[i]};
    }
    any_toggles = any_toggles || !s.membership_toggles.empty();
  }
  membership_active_ = any_toggles || scenario_.churn_rate > 0.0;
  if (scenario_.churn_rate > 0.0) {
    churn_managed_.assign(num_sites, 0);
    churn_rng_.reserve(num_sites);
    const std::uint64_t churn_seed = derive_seed(scenario_.seed, 0xc4e11ULL);
    for (std::size_t i = 0; i < num_sites; ++i) {
      // Dedicated per-site streams: churn draws never touch the link
      // RNGs, so arming churn shifts no loss/jitter/dropout draw.
      churn_rng_.push_back(make_rng(churn_seed, i));
      churn_managed_[i] =
          static_cast<char>(!join[i].has_value() && !leave[i].has_value());
    }
  }

  up_.reserve(num_sites);
  down_.reserve(num_sites);
  for (std::size_t i = 0; i < num_sites; ++i) {
    up_.emplace_back(SimLink(this, static_cast<std::uint32_t>(i), true,
                             derive_seed(scenario_.seed, 0xF0ULL + 2 * i)));
    down_.emplace_back(SimLink(this, static_cast<std::uint32_t>(i), false,
                               derive_seed(scenario_.seed, 0xF1ULL + 2 * i)));
  }
}

Port& SimNetwork::uplink(std::size_t source) {
  EKM_EXPECTS(source < up_.size());
  return up_[source];
}

Port& SimNetwork::downlink(std::size_t source) {
  EKM_EXPECTS(source < down_.size());
  return down_[source];
}

const SimLink& SimNetwork::uplink_view(std::size_t source) const {
  EKM_EXPECTS(source < up_.size());
  return up_[source];
}

const SimLink& SimNetwork::downlink_view(std::size_t source) const {
  EKM_EXPECTS(source < down_.size());
  return down_[source];
}

const Site& SimNetwork::site(std::size_t i) const {
  EKM_EXPECTS(i < sites_.size());
  return sites_[i];
}

RoundId SimNetwork::open_round(double deadline_seconds) {
  EKM_EXPECTS_MSG(deadline_seconds > 0.0, "round deadline must be > 0");
  // The round now closing gets its metrics snapshot before the new
  // one's context stops being current. Pure read of existing counters —
  // nothing about the simulation changes (see set_recorder).
  if (recorder_ != nullptr) snapshot_round_to_recorder();
  RoundContext ctx;
  ctx.cutoff = std::isfinite(deadline_seconds)
                   ? server_clock_ + deadline_seconds
                   : kNoDeadline;
  rounds_.push_back(ctx);
  rounds_opened_ += 1;
  // Handles are 1-based so kNoRound (0) stays the "no round" sentinel;
  // the context table is indexed by handle - 1 and never shrinks — a
  // straggler's frame from round r keeps its cutoff resolvable after
  // round r+1 opened, which is what cross-round pipelining rides on.
  current_round_ = static_cast<RoundId>(rounds_.size());
  if (recorder_ != nullptr) {
    recorder_->record_server_op(ServerOpKind::kRoundOpen, ctx.cutoff, 0,
                                kNoCausalFrame, rounds_opened_);
  }
  return current_round_;
}

double SimNetwork::round_cutoff(RoundId round) const {
  if (round == kNoRound) return kNoDeadline;
  EKM_EXPECTS_MSG(round <= rounds_.size(), "round handle from another fabric");
  return rounds_[round - 1].cutoff;
}

RoundId SimNetwork::open_subround(RoundId round, double absolute_deadline) {
  EKM_EXPECTS_MSG(!std::isnan(absolute_deadline),
                  "sub-round deadline must not be NaN");
  EKM_EXPECTS_MSG(round != kNoRound && round <= rounds_.size(),
                  "open_subround needs an open round's handle");
  RoundContext& ctx = rounds_[round - 1];
  // A wave can only tighten the enclosing round's cutoff, never extend
  // it past the round boundary the sites already scheduled around.
  ctx.cutoff = std::min(ctx.cutoff, absolute_deadline);
  // Frames sent under this round from here on are wave supplements: a
  // miss of one is counted supplemental (the sender's first-wave data
  // still stands), which is what makes deadline_misses decomposable
  // into exact data loss + superseded supplements.
  ctx.in_wave = true;
  subrounds_opened_ += 1;
  return round;
}

void SimNetwork::do_send(SimLink& link, Message msg) {
  // The paper's ledger bills goodput at send time, exactly as the
  // synchronous Channel does — fault-free runs must match it bitwise.
  link.ledger_.bytes += msg.payload.size();
  link.ledger_.bits += msg.wire_bits;
  link.ledger_.scalars += msg.scalars;
  link.ledger_.messages += 1;

  Site& site = sites_[link.site_];
  const LinkModel& radio = site.radio;
  const double bits = static_cast<double>(msg.wire_bits);
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  // --- sender-side compute: the frame exists only after the actor has
  // spent the virtual CPU time producing its scalars. ---
  // A frame whose site is not a fleet member (siteN.leave / churn)
  // orphans: a first-class drop resolved without keying the radio. An
  // uplink from a departed site charges no compute and draws no
  // dropout — nothing runs there; a broadcast *to* a departed site is
  // produced at the server as usual, then orphans in the retry loop.
  double ready;
  bool orphaned = false;
  // Per-frame causal timeline (obs/recorder.hpp FrameCausal): plain
  // locals over values the send is computing anyway, recorded only
  // behind the recorder branch at the bottom. No draw, no event, no
  // clock touches either way.
  double causal_compute = 0.0;
  double causal_outage = 0.0;
  if (link.uplink_) {
    if (membership_active_ && !site_member_at(link.site_, site.clock_s)) {
      orphaned = true;
      ready = site.clock_s;
    } else {
      causal_compute = static_cast<double>(msg.scalars) *
                       scenario_.seconds_per_scalar / site.compute_speed;
      site.clock_s += causal_compute;
      // Trace-driven links may override the dropout rate from the
      // active segment; the draw itself stays on the link stream in
      // the same program order (no trace → identical draws).
      double dropout = site.dropout_rate;
      if (const TraceSegment* seg = trace_segment_at(site, site.clock_s)) {
        if (seg->dropout_rate) dropout = *seg->dropout_rate;
      }
      if (dropout > 0.0 && unif(link.rng_) < dropout) {
        // The site is in a dropout window when it reaches for the radio:
        // it sits the outage out, then proceeds.
        site.outages += 1;
        site.clock_s += scenario_.outage_seconds;
        causal_outage = scenario_.outage_seconds;
        queue_.push({site.clock_s, 0, SimEventType::kOutage, link.site_,
                     link.uplink_, 0, msg.wire_bits});
      }
      ready = site.clock_s;
    }
  } else {
    const double compute = static_cast<double>(msg.scalars) *
                           scenario_.seconds_per_scalar / scenario_.server_speed;
    server_clock_ += compute;
    cp_server_clock_ += compute;  // producing the broadcast is real work
    ready = server_clock_;
    if (recorder_ != nullptr) {
      recorder_->record_server_op(ServerOpKind::kCompute, compute, link.site_);
    }
  }

  // Round deadlines govern the collection direction only: an uplink
  // attempt that would start at or after the sending round's cutoff is
  // never made (the sites know the round schedule and stop wasting the
  // radio). Downlink broadcasts are not round-bounded. The frame is
  // bound to the round open *now* — under pipelining a later round may
  // already be open by the time the receiver reaches for this frame,
  // and the fate decided here stays judged against this cutoff.
  const RoundId frame_round = link.uplink_ ? current_round_ : kNoRound;
  const double cutoff = round_cutoff(frame_round);

  // --- transmission attempts: serialize on the link, ride the radio,
  // retransmit on loss until delivered, the retry budget is spent, or
  // the round deadline cancels the remaining attempts. A frame whose
  // budget or deadline runs out is a first-class drop: it never
  // delivers, and every attempt actually made stays billed. What a
  // sender waits between attempts is its RetryPolicy (fixed
  // ack-timeout, exponential backoff + jitter, or deadline-aware
  // give-up); policy draws come from the same per-link RNG stream as
  // loss/jitter, on the protocol thread, so every strategy is
  // thread-count deterministic — and consumes no draws on a clean
  // first attempt, keeping fault-free runs bitwise identical across
  // strategies. ---
  const RetryStrategy strategy = site.retry;
  double start = std::max(ready, link.busy_until_);
  double end = start;  ///< end of the last attempt actually made
  bool delivered = false;
  double abandon_at = start;
  const double first_start = start;  ///< after the link-busy wait
  double causal_send_start = start;  ///< start of the last attempt made
  std::uint16_t causal_attempts = 0;
  // Predicted-arrival NAK (round pipelining): the earliest moment the
  // sender can *prove* this frame will miss its round's cutoff. An
  // attempt whose best-case airtime (minimum jitter) already overshoots
  // is proof at that attempt's start — even if the attempt is still
  // made and even if it delivers (late). Pure arithmetic over values
  // already computed: no draw, no event, no billing, so runs that never
  // consult nak_at (fault-free, unbounded rounds, pipelining off) are
  // bitwise unperturbed.
  const bool predict_nak =
      pipelining_ && link.uplink_ && std::isfinite(cutoff);
  double provable_miss_at = kNoDeadline;
  const double base_airtime =
      bits / radio.bandwidth_bps + radio.per_message_latency_s;
  const auto energy_of = [&](double b) { return b * radio.energy_per_bit_j; };
  for (int attempt = 0;; ++attempt) {
    if (!orphaned && membership_active_ &&
        !site_member_at(link.site_, start)) {
      // Mid-round leave: the site departed between attempts (or, on a
      // downlink, before the broadcast reached it). The frame resolves
      // as a first-class orphaned drop at the moment the radio would
      // have keyed — no further attempts, nothing more billed.
      orphaned = true;
    }
    if (orphaned) {
      abandon_at = start;
      break;
    }
    if (start >= cutoff) {
      // Deadline cancelation: the sender abandons at the moment it
      // would have keyed the radio again.
      abandon_at = start;
      break;
    }
    // Trace-driven links: the active segment at this attempt's start
    // overrides bandwidth (hence airtime) and loss; per-frame latency
    // and energy always stay with the radio class. No active segment
    // (or no trace) leaves the static-link arithmetic untouched, bit
    // for bit.
    double attempt_airtime = base_airtime;
    double attempt_loss = site.loss_rate;
    if (const TraceSegment* seg = trace_segment_at(site, start)) {
      attempt_airtime =
          bits / seg->bandwidth_bps + radio.per_message_latency_s;
      attempt_loss = seg->loss_rate;
    }
    if (predict_nak && !std::isfinite(provable_miss_at) &&
        start + attempt_airtime * (1.0 - scenario_.jitter_frac) > cutoff) {
      // Even the luckiest jitter draw cannot land this attempt before
      // the cutoff, and any retransmission starts after this attempt
      // ends — past the cutoff, hence canceled. Miss proven at `start`;
      // the attempt itself still proceeds (it may deliver late, which
      // the receiver will discard like before).
      provable_miss_at = start;
    }
    if (strategy == RetryStrategy::kGiveUp &&
        start + attempt_airtime > cutoff) {
      // Deadline-aware give-up: even the unjittered airtime cannot
      // complete before the round cutoff, so keying the radio would
      // only burn energy on a frame the server will abandon. Expire
      // now, attempt never made, nothing billed for it. (Judged on
      // the expected airtime — drawing jitter for a canceled attempt
      // would shift the loss stream of every later frame.)
      abandon_at = start;
      break;
    }
    // The event field saturates at 16 bits; the retry *policy* must
    // not, or huge max_retries would wrap and disable loss entirely.
    const auto attempt_tag = static_cast<std::uint16_t>(
        std::min(attempt, 0xFFFF));
    double airtime = attempt_airtime;
    if (scenario_.jitter_frac > 0.0) {
      airtime *= 1.0 + scenario_.jitter_frac * (2.0 * unif(link.rng_) - 1.0);
    }
    link.stats_.attempts += 1;
    link.stats_.airtime_s += airtime;
    causal_send_start = start;
    if (causal_attempts < 0xFFFF) causal_attempts += 1;
    if (link.uplink_) site.energy_j += energy_of(bits);  // transmit energy
    queue_.push({start, 0, SimEventType::kSendStart, link.site_, link.uplink_,
                 attempt_tag, msg.wire_bits});
    end = start + airtime;
    const bool lost = attempt_loss > 0.0 && unif(link.rng_) < attempt_loss;
    if (!lost) {
      queue_.push({end, 0, SimEventType::kDeliver, link.site_, link.uplink_,
                   attempt_tag, msg.wire_bits});
      link.busy_until_ = end;
      // Store-and-forward sender: busy until its own frame is through.
      if (link.uplink_) {
        site.clock_s = std::max(site.clock_s, end);
      } else {
        server_clock_ = std::max(server_clock_, end);
        cp_server_clock_ = std::max(cp_server_clock_, end);
        if (recorder_ != nullptr) {
          recorder_->record_server_op(ServerOpKind::kDownlinkForward, end,
                                      link.site_);
        }
      }
      delivered = true;
      break;
    }
    link.stats_.drops += 1;
    link.stats_.retransmit_bits += msg.wire_bits;
    queue_.push({end, 0, SimEventType::kDrop, link.site_, link.uplink_,
                 attempt_tag, msg.wire_bits});
    if (attempt >= scenario_.max_retries) {
      // Retry budget spent mid-frame: a first-class drop outcome, not
      // a magically reliable fallback. The attempt that just failed is
      // billed like every other drop.
      abandon_at = end;
      break;
    }
    // The sender detects the loss after an ack-timeout of one
    // per-frame latency; what it waits beyond that is the retry
    // policy's call.
    double delay = radio.per_message_latency_s;
    if (strategy == RetryStrategy::kBackoff) {
      const double factor =
          std::min(std::pow(scenario_.retry.backoff_base,
                            static_cast<double>(attempt)),
                   scenario_.retry.backoff_cap);
      delay *= factor;
      if (scenario_.retry.backoff_jitter > 0.0) {
        delay *= 1.0 +
                 scenario_.retry.backoff_jitter * (2.0 * unif(link.rng_) - 1.0);
      }
    }
    start = end + delay;
  }

  SimFrame frame;
  frame.msg = std::move(msg);
  // Uplink frames carry the round they were sent under; round-scoped
  // receives assert the tag matches, which structurally enforces the
  // convention every protocol in src/distributed and streaming
  // observes — a late straggler from round r can never be consumed as
  // round r+1's frame. Downlink traffic stays round-less (kNoRound): a
  // later protocol phase may broadcast before it opens its own round
  // (refine pushes centers first), and tagging broadcasts with a stale
  // round — or its wave flag — would smuggle real losses into the
  // supplemental (loses-nothing) bucket. A lost wave *broadcast*
  // therefore stays in the conservative upper bound, like any other
  // downlink miss.
  frame.round = frame_round;
  frame.wave = frame_round != kNoRound && rounds_[frame_round - 1].in_wave;
  if (delivered) {
    frame.arrival = end;
    frame.delivery_seq = link.deliveries_scheduled_++;
  } else {
    frame.arrival = abandon_at;
    frame.expired = true;
    link.stats_.expired += 1;
    if (orphaned) {
      link.stats_.orphaned += 1;
      orphaned_frames_ += 1;
    }
    link.busy_until_ = std::max(link.busy_until_, end);
    if (link.uplink_) {
      site.clock_s = std::max(site.clock_s, end);
    } else {
      server_clock_ = std::max(server_clock_, end);
      cp_server_clock_ = std::max(cp_server_clock_, end);
      if (recorder_ != nullptr) {
        recorder_->record_server_op(ServerOpKind::kDownlinkForward, end,
                                    link.site_);
      }
    }
    queue_.push({abandon_at, 0, SimEventType::kExpire, link.site_, link.uplink_,
                 0, frame.msg.wire_bits});
    // Abandonment is itself proof of the miss (orphan, deadline cancel,
    // give-up, or a spent retry budget) — it can only tighten the
    // attempt-level prediction above, never loosen it.
    if (predict_nak) {
      provable_miss_at = std::min(provable_miss_at, abandon_at);
    }
  }
  if (std::isfinite(provable_miss_at)) {
    // The NAK is a control-plane frame: one per-frame latency to reach
    // the server, no payload airtime, no energy, nothing on any ledger.
    frame.nak_at = provable_miss_at + radio.per_message_latency_s;
  }
  if (recorder_ != nullptr && link.uplink_) {
    // Seal the frame's causal timeline for attribution. Every value is
    // one the send just computed; the index rides the frame so the
    // receive-side op can name its cause.
    FrameCausal causal;
    causal.site = static_cast<std::uint32_t>(link.site_);
    causal.round = frame.round;
    causal.compute_s = causal_compute;
    causal.outage_s = causal_outage;
    causal.ready_s = ready;
    causal.first_start_s = first_start;
    causal.send_start_s = causal_send_start;
    causal.arrival_s = frame.arrival;
    causal.nak_at_s = frame.nak_at;
    causal.attempts = causal_attempts;
    causal.expired = frame.expired;
    causal.wave = frame.wave;
    frame.causal = recorder_->record_frame_causal(causal);
  }
  link.in_flight_.push_back(std::move(frame));
}

std::optional<Message> SimNetwork::do_receive_by(SimLink& link, RoundId round,
                                                 double deadline_cap) {
  EKM_EXPECTS_MSG(!link.in_flight_.empty(),
                  "receive on idle simulated network");
  // The effective deadline is the round's cutoff *as of now* (a wave
  // may have tightened it since the frame was sent), further capped by
  // the caller (tree level-0 collects cap gateway-bound frames at an
  // earlier hop deadline). kNoRound receives are uncapped unless the
  // caller says otherwise.
  const double deadline = std::min(round_cutoff(round), deadline_cap);
  SimFrame frame = std::move(link.in_flight_.front());
  link.in_flight_.pop_front();
  // Round-scoped uplink receives must consume a frame of that round:
  // under pipelining, round r+1's collect running while round r's
  // straggler is still on the air must never swallow the straggler's
  // frame. FIFO links + the one-outstanding-frame-per-round protocol
  // convention make this structural; the assert keeps it so.
  if (round != kNoRound && link.uplink_) {
    EKM_EXPECTS_MSG(frame.round == round,
                    "cross-round frame aliasing: round-scoped receive "
                    "consumed a frame sent under another round");
  }
  const bool miss = frame.expired || frame.arrival > deadline;
  // Either way the frame is consumed: a miss means the round moved on,
  // and a late delivery must not alias the next round's frame.
  if (miss) {
    link.stats_.missed += 1;
    missed_frames_ += 1;
    if (frame.wave) {
      link.stats_.supplemental += 1;
      supplemental_misses_ += 1;
    }
    // The receiver waits the round out (or, with no deadline, learns
    // of the expiry when the sender gives up).
    double learn = std::isfinite(deadline) ? deadline : frame.arrival;
    if (overlap_ && std::isfinite(deadline) && frame.expired &&
        link.uplink_) {
      // Phase overlap: the sender NAKs its give-up out-of-band — a
      // control frame of one per-frame latency, no payload airtime,
      // nothing billed — so the server's barrier can commit the moment
      // this frame's fate is final instead of waiting the round out.
      // An expiry later than the cutoff still resolves at the cutoff
      // (the server can never learn less than the deadline tells it).
      learn = std::min(
          deadline,
          frame.arrival + sites_[link.site_].radio.per_message_latency_s);
    }
    if (pipelining_ && std::isfinite(deadline) && link.uplink_) {
      // Predicted-arrival NAK (round pipelining): the sender proved the
      // miss — possibly attempts before abandoning, possibly before a
      // late delivery the overlap NAK never covers — and the server
      // learned of it one control-frame latency later. Strictly no
      // later than the overlap NAK's resolution, often much earlier.
      // frame.nak_at is kNoDeadline when no miss was provable, making
      // the clamp a no-op.
      learn = std::min(learn, frame.nak_at);
    }
    if (!frame.expired) {
      // Delivered, but after the deadline: trace the receiver-side
      // abandonment (sender-side expiries traced their own kExpire).
      queue_.push({learn, 0, SimEventType::kExpire, link.site_, link.uplink_,
                   0, frame.msg.wire_bits});
    }
    if (link.uplink_) {
      server_clock_ = std::max(server_clock_, learn);
      if (recorder_ != nullptr) {
        recorder_->record_server_op(ServerOpKind::kMissLearn, learn,
                                    link.site_, frame.causal);
      }
    } else {
      Site& s = sites_[link.site_];
      s.clock_s = std::max(s.clock_s, learn);
    }
    link.consumed_at_ = learn;
    return std::nullopt;
  }

  // Hit: drain the queue until this frame's delivery event has been
  // processed. This reproduces the pre-deadline runtime's event pop
  // order exactly, which keeps the receive-energy accumulation order —
  // and therefore the energy figure, bit for bit — stable.
  while (link.deliveries_done_ <= frame.delivery_seq) {
    EKM_EXPECTS_MSG(!queue_.empty(), "receive on idle simulated network");
    advance_one_event();
  }
  // The reader blocks until the frame is in: receiving advances the
  // reader's clock to the arrival time (it may already be later).
  if (link.uplink_) {
    server_clock_ = std::max(server_clock_, frame.arrival);
    // A consumed arrival is real critical-path work; what the mirror
    // clock deliberately skips is the miss path's learn wait above.
    cp_server_clock_ = std::max(cp_server_clock_, frame.arrival);
    if (recorder_ != nullptr) {
      recorder_->record_server_op(ServerOpKind::kUplinkArrival, frame.arrival,
                                  link.site_, frame.causal);
    }
  } else {
    Site& s = sites_[link.site_];
    s.clock_s = std::max(s.clock_s, frame.arrival);
  }
  link.consumed_at_ = frame.arrival;
  return std::move(frame.msg);
}

bool SimNetwork::site_member_at(std::size_t i, double t) {
  if (!membership_active_) return true;
  Site& s = sites_[i];
  if (!churn_rng_.empty() && churn_managed_[i] != 0) {
    // Stochastic churn: extend the site's toggle schedule lazily past t
    // with alternating Exponential(churn_rate) holds from the site's
    // dedicated stream. Lazy extension keeps churn free for sites whose
    // membership is never consulted, and the schedule — once drawn — is
    // immutable, so repeated queries agree.
    std::exponential_distribution<double> gap(scenario_.churn_rate);
    double horizon =
        s.membership_toggles.empty() ? 0.0 : s.membership_toggles.back();
    while (horizon <= t) {
      horizon += gap(churn_rng_[i]);
      s.membership_toggles.push_back(horizon);
    }
  }
  bool member = s.initial_member;
  for (double toggle : s.membership_toggles) {
    if (toggle > t) break;
    member = !member;
  }
  return member;
}

double SimNetwork::uplink_airtime_s(std::size_t source,
                                    std::uint64_t wire_bits) const {
  EKM_EXPECTS(source < sites_.size());
  const Site& s = sites_[source];
  double bandwidth = s.radio.bandwidth_bps;
  if (const TraceSegment* seg = trace_segment_at(s, s.clock_s)) {
    bandwidth = seg->bandwidth_bps;
  }
  return static_cast<double>(wire_bits) / bandwidth +
         s.radio.per_message_latency_s;
}

bool SimNetwork::is_member(std::size_t source) {
  EKM_EXPECTS(source < sites_.size());
  return site_member_at(source, sites_[source].clock_s);
}

void SimNetwork::advance_one_event() {
  SimEvent ev = queue_.pop();
  clock_ = std::max(clock_, ev.time);
  if (ev.type == SimEventType::kDeliver) {
    SimLink& link = ev.uplink ? up_[ev.site] : down_[ev.site];
    link.deliveries_done_ += 1;
    EKM_ENSURES_MSG(link.deliveries_done_ <= link.deliveries_scheduled_,
                    "delivery event with no frame in flight");
    if (!ev.uplink) {
      // Receive energy for the downlink frame, billed at the transmit
      // rate (an upper bound; see link_model.hpp round_trip_joules).
      Site& s = sites_[ev.site];
      s.energy_j += static_cast<double>(ev.bits) * s.radio.energy_per_bit_j;
    }
  }
  // Trace retention is capped by the scenario (`event-log=off|N`): the
  // first N events processed are kept, the rest dropped. Clocks,
  // energy and ledgers above are untouched — only the log shrinks.
  if (log_.size() < scenario_.event_log_limit) log_.push_back(ev);
  // The flight recorder mirrors every event regardless of the cap —
  // its copy feeds the exported trace, not event_log(), so capping one
  // never truncates the other. Mirroring is a pure read of `ev`.
  if (recorder_ != nullptr) {
    recorder_->record_sim_event(ev.time, sim_event_name(ev.type), ev.site,
                                ev.uplink, ev.attempt, ev.bits);
  }
}

void SimNetwork::set_recorder(Recorder* recorder) {
  recorder_ = recorder;
  // Re-arm the delta baseline: this network's rounds start at 1, even
  // if the recorder already rode another run (the bench sweeps attach
  // one recorder to every sweep cell in turn).
  if (recorder_ != nullptr) recorder_->begin_run();
}

void SimNetwork::snapshot_round_to_recorder() {
  if (rounds_snapshotted_ >= rounds_opened_) return;  // nothing open yet
  RoundTotals totals;
  totals.rounds_opened = rounds_opened_;
  totals.server_time_s = server_clock_;
  totals.missed_frames = missed_frames_;
  totals.supplemental_misses = supplemental_misses_;
  totals.orphaned_frames = orphaned_frames_;
  totals.subrounds_opened = subrounds_opened_;
  totals.energy_joules = energy_joules();
  totals.queue_high_water = queue_.high_water();
  totals.per_uplink_missed.reserve(up_.size());
  for (const SimLink& l : up_) {
    totals.uplink_bits += l.ledger().bits;
    totals.uplink_frames += l.ledger().messages;
    totals.per_uplink_missed.push_back(l.stats().missed);
  }
  recorder_->snapshot_round(totals);
  rounds_snapshotted_ = rounds_opened_;
}

void SimNetwork::assert_link_invariants(const SimLink& l) const {
  // Every attempt either delivered or dropped; every frame either
  // scheduled a delivery or expired; retransmitted bits exist only if
  // attempts dropped. Violations mean the billing paths diverged.
  EKM_ENSURES_MSG(l.stats_.attempts == l.deliveries_scheduled_ + l.stats_.drops,
                  "link attempt ledger out of balance");
  EKM_ENSURES_MSG(l.ledger_.messages == l.deliveries_scheduled_ + l.stats_.expired,
                  "link frame ledger out of balance");
  EKM_ENSURES_MSG(l.stats_.drops > 0 || l.stats_.retransmit_bits == 0,
                  "retransmit bits billed without drops");
  EKM_ENSURES_MSG(l.deliveries_done_ == l.deliveries_scheduled_,
                  "unprocessed delivery events after finish");
  // A receiver can only abandon frames that exist: every miss was an
  // expired frame or a late delivery. Reallocation-wave supplements
  // and give-up expiries must keep this balanced — a double-billed
  // wave frame would show up here.
  EKM_ENSURES_MSG(l.stats_.missed <= l.stats_.expired + l.deliveries_scheduled_,
                  "missed frames exceed expiries plus deliveries");
  // Supplemental misses are a classification of misses, never a
  // separate population.
  EKM_ENSURES_MSG(l.stats_.supplemental <= l.stats_.missed,
                  "supplemental misses exceed total misses");
  // Orphaned frames are a classification of expiries: a membership
  // change resolves a frame through the same first-class drop path.
  EKM_ENSURES_MSG(l.stats_.orphaned <= l.stats_.expired,
                  "orphaned frames exceed expiries");
}

double SimNetwork::finish() {
  while (!queue_.empty()) advance_one_event();
  // The final round never sees another open_round; close it here so
  // the JSONL carries exactly one snapshot per round opened.
  if (recorder_ != nullptr) snapshot_round_to_recorder();
  for (const SimLink& l : up_) assert_link_invariants(l);
  for (const SimLink& l : down_) assert_link_invariants(l);
  // Events are processed lazily (a site whose frame is read late may
  // have committed an earlier virtual time than events already
  // drained), so canonicalize the trace into (time, push-seq) order.
  std::sort(log_.begin(), log_.end(),
            [](const SimEvent& a, const SimEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  double completion = std::max(clock_, server_clock_);
  for (const Site& s : sites_) completion = std::max(completion, s.clock_s);
  for (const SimLink& l : up_) completion = std::max(completion, l.busy_until_);
  for (const SimLink& l : down_) completion = std::max(completion, l.busy_until_);
  // Count the membership changes the run actually crossed: every
  // toggle in [0, completion], classified by the state it flips into.
  // Recomputed from scratch so finish() stays idempotent.
  if (membership_active_) {
    joins_ = 0;
    leaves_ = 0;
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      // Extend churn schedules through the whole run, so a site whose
      // membership was never consulted mid-run still reports its churn.
      (void)site_member_at(i, completion);
      bool member = sites_[i].initial_member;
      for (double toggle : sites_[i].membership_toggles) {
        if (toggle > completion) break;
        member = !member;
        if (member) {
          joins_ += 1;
        } else {
          leaves_ += 1;
        }
      }
    }
  }
  return completion;
}

double SimNetwork::energy_joules() const {
  double total = 0.0;
  for (const Site& s : sites_) total += s.energy_j;
  return total;
}

std::uint64_t SimNetwork::total_outages() const {
  std::uint64_t total = 0;
  for (const Site& s : sites_) total += s.outages;
  return total;
}

LinkStats SimNetwork::total_uplink_stats() const {
  LinkStats t;
  for (const SimLink& l : up_) t += l.stats();
  return t;
}

LinkStats SimNetwork::total_downlink_stats() const {
  LinkStats t;
  for (const SimLink& l : down_) t += l.stats();
  return t;
}

}  // namespace ekm
