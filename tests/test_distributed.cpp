// Tests for src/distributed: disPCA merge quality, disSS protocol and
// coreset property, BKLW end-to-end.
#include <gtest/gtest.h>

#include <cmath>

#include "cr/coreset.hpp"
#include "data/generators.hpp"
#include "distributed/bklw.hpp"
#include "distributed/dispca.hpp"
#include "distributed/disss.hpp"
#include "dr/pca.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"

namespace ekm {
namespace {

std::vector<Dataset> make_parts(std::size_t n, std::size_t dim, std::size_t k,
                                std::size_t m, std::uint64_t seed) {
  Rng rng = make_rng(seed);
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.k = k;
  const Dataset d = make_gaussian_mixture(spec, rng);
  return partition_random(d, m, rng);
}

TEST(DisPca, MergedSubspaceCapturesEnergyLikeCentralizedPca) {
  const std::vector<Dataset> parts = make_parts(600, 24, 3, 4, 80);
  const Dataset full = concatenate(parts);

  Network net(4);
  Stopwatch work;
  DisPcaOptions opts;
  opts.t1 = 6;
  opts.t2 = 6;
  const DisPcaResult res = dispca(parts, opts, net, work);
  EXPECT_EQ(res.v.rows(), 24u);
  EXPECT_EQ(res.v.cols(), 6u);

  // Orthonormal columns.
  const Matrix vtv = matmul_at_b(res.v, res.v);
  EXPECT_LT(subtract(vtv, Matrix::identity(6)).frobenius_norm(), 1e-8);

  // Captured energy within a whisker of centralized top-6 PCA.
  const Matrix coords = matmul(full.points(), res.v);
  const double captured = std::pow(coords.frobenius_norm(), 2);
  const PcaProjection central = pca_project(full, 6);
  const double central_captured =
      std::pow(central.coords.points().frobenius_norm(), 2);
  EXPECT_GT(captured, 0.95 * central_captured);

  // Communication: each source ships t1 + t1*d scalars (+ headers).
  EXPECT_EQ(net.total_uplink().scalars, 4u * (6 + 6 * 24));
  EXPECT_GT(work.total_seconds(), 0.0);
}

TEST(DisPca, SingleSourceEqualsLocalPca) {
  const std::vector<Dataset> parts = make_parts(200, 10, 2, 1, 81);
  Network net(1);
  Stopwatch work;
  DisPcaOptions opts;
  opts.t1 = 3;
  opts.t2 = 3;
  const DisPcaResult res = dispca(parts, opts, net, work);
  const PcaProjection local = pca_project(parts[0], 3);
  // Subspaces coincide: projector difference is ~0.
  const Matrix p1 = matmul_a_bt(res.v, res.v);
  const Matrix p2 = matmul_a_bt(local.map.projection(), local.map.projection());
  EXPECT_LT(subtract(p1, p2).frobenius_norm(), 1e-6);
}

TEST(DisPca, ToleratesEmptySource) {
  std::vector<Dataset> parts = make_parts(200, 8, 2, 2, 82);
  parts.push_back(Dataset());  // third, empty source
  Network net(3);
  Stopwatch work;
  DisPcaOptions opts;
  opts.t1 = 4;
  opts.t2 = 4;
  const DisPcaResult res = dispca(parts, opts, net, work);
  EXPECT_EQ(res.v.cols(), 4u);
}

TEST(DisSs, CoresetWeightApproximatesCardinality) {
  const std::vector<Dataset> parts = make_parts(800, 12, 3, 5, 83);
  Network net(5);
  Stopwatch work;
  DisSsOptions opts;
  opts.k = 3;
  opts.total_samples = 120;
  const Coreset cs = disss(parts, opts, net, work, 84);
  EXPECT_GT(cs.size(), 0u);
  EXPECT_NEAR(cs.points.total_weight(), 800.0, 80.0);
}

TEST(DisSs, CoresetEpsilonProperty) {
  const std::vector<Dataset> parts = make_parts(1000, 10, 3, 4, 85);
  const Dataset full = concatenate(parts);
  Network net(4);
  Stopwatch work;
  DisSsOptions opts;
  opts.k = 3;
  opts.total_samples = 300;
  const Coreset cs = disss(parts, opts, net, work, 86);

  Rng crng = make_rng(87);
  double worst = 0.0;
  for (int t = 0; t < 10; ++t) {
    const Matrix centers = Matrix::gaussian(3, 10, crng, 3.0);
    worst = std::max(worst, coreset_eps_for(cs, full, centers));
  }
  KMeansOptions kopts;
  kopts.k = 3;
  kopts.seed = 88;
  worst = std::max(worst, coreset_eps_for(cs, full, kmeans(full, kopts).centers));
  EXPECT_LT(worst, 0.3);
}

TEST(DisSs, ProtocolLedger) {
  const std::vector<Dataset> parts = make_parts(300, 6, 2, 3, 89);
  Network net(3);
  Stopwatch work;
  DisSsOptions opts;
  opts.k = 2;
  opts.total_samples = 60;
  (void)disss(parts, opts, net, work, 90);
  // Per source: 1 cost scalar + the coreset frame = 2 uplink messages.
  EXPECT_EQ(net.total_uplink().messages, 6u);
  // Per source: 1 allocation scalar downlink.
  EXPECT_EQ(net.total_downlink().messages, 3u);
}

TEST(DisSs, AllocationProportionalToCost) {
  // Source 1 holds the dispersed half (higher local cost): it must get
  // (almost all of) the samples. Build two sources directly.
  Rng rng = make_rng(91);
  Matrix tight(200, 4);   // all points identical -> zero local cost
  Matrix spread = Matrix::gaussian(200, 4, rng, 10.0);
  std::vector<Dataset> parts;
  parts.emplace_back(std::move(tight));
  parts.emplace_back(std::move(spread));

  Network net(2);
  Stopwatch work;
  DisSsOptions opts;
  opts.k = 2;
  opts.total_samples = 50;
  const Coreset cs = disss(parts, opts, net, work, 92);
  // All sampled points must come from the spread source; the tight
  // source contributes only its (zero-cost) bicriteria centers.
  std::size_t from_spread = 0;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (norm2(cs.points.point(i)) > 1e-9) ++from_spread;
  }
  EXPECT_GT(from_spread, 40u);
}

TEST(Bklw, CoresetSupportsNearOptimalSolve) {
  const std::vector<Dataset> parts = make_parts(900, 20, 3, 5, 93);
  const Dataset full = concatenate(parts);
  Network net(5);
  Stopwatch work;
  BklwOptions opts;
  opts.k = 3;
  opts.epsilon = 0.4;
  opts.intrinsic_dim = 8;
  opts.total_samples = 250;
  const Coreset cs = bklw_coreset(parts, opts, net, work, 94);
  ASSERT_TRUE(cs.basis.has_value());
  EXPECT_EQ(cs.basis->cols(), 20u);
  EXPECT_EQ(cs.points.dim(), cs.basis->rows());

  KMeansOptions kopts;
  kopts.k = 3;
  kopts.restarts = 8;
  kopts.seed = 95;
  const double full_cost = kmeans(full, kopts).cost;
  const KMeansResult on_cs = kmeans(cs.points, kopts);
  const Matrix lifted = matmul(on_cs.centers, *cs.basis);
  EXPECT_LT(kmeans_cost(full, lifted), 1.3 * full_cost);
}

TEST(Bklw, CommunicationDominatedByDisPca) {
  const std::vector<Dataset> parts = make_parts(600, 100, 2, 4, 96);
  Network net(4);
  Stopwatch work;
  BklwOptions opts;
  opts.k = 2;
  opts.epsilon = 0.5;
  opts.intrinsic_dim = 10;
  opts.total_samples = 80;
  (void)bklw_coreset(parts, opts, net, work, 97);
  const std::uint64_t dispca_scalars = 4u * (10 + 10 * 100);
  // disPCA's V transfers dominate: > 2/3 of all uplink scalars.
  EXPECT_GT(static_cast<double>(dispca_scalars),
            0.66 * static_cast<double>(net.total_uplink().scalars));
}

TEST(Bklw, RejectsAllEmpty) {
  std::vector<Dataset> parts(2);
  Network net(2);
  Stopwatch work;
  BklwOptions opts;
  EXPECT_THROW((void)bklw_coreset(parts, opts, net, work, 98),
               precondition_error);
}

}  // namespace
}  // namespace ekm
