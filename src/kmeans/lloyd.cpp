#include "kmeans/lloyd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "common/parallel.hpp"
#include "common/sampling.hpp"
#include "kmeans/assign.hpp"

namespace ekm {
namespace {

// Points per reduction chunk in the update step. Fixed grain: the chunk
// grid (and hence the summation order) is independent of the thread
// count, keeping lloyd() bitwise-deterministic under EKM_THREADS.
constexpr std::size_t kUpdateGrain = 2048;
// Caps on the update-step scratch: at most this many chunks, and at most
// this many scratch doubles overall (each chunk owns a k·(d+1) block, so
// for large k·d the chunk count shrinks further). Both bounds depend
// only on the problem shape, never on the thread count.
constexpr std::size_t kMaxUpdateChunks = 256;
constexpr std::size_t kUpdateScratchDoubles = std::size_t(1) << 23;  // 64 MB

}  // namespace

Matrix kmeanspp_seed(const Dataset& data, std::size_t k, Rng& rng) {
  EKM_EXPECTS(k >= 1 && !data.empty());
  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  Matrix centers(std::min(k, n), d);

  // First center ∝ weight. sample_from_prefix replaces the old O(n)
  // subtract-scan per draw with prefix sums + binary search.
  std::vector<double> cum(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += data.weight(i);
    cum[i] = total;
  }
  EKM_EXPECTS_MSG(total > 0.0, "all weights are zero");
  const std::size_t first = sample_from_prefix(cum, rng);
  std::copy(data.point(first).begin(), data.point(first).end(),
            centers.row(0).begin());

  // Maintain squared distance to the nearest chosen center. Point norms
  // are invariant across the seeding loop.
  const std::vector<double> point_norms = row_sq_norms(data.points());
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  update_min_sq_dist(data.points(), centers.row_range(0, 1), d2, point_norms);

  for (std::size_t c = 1; c < centers.rows(); ++c) {
    total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += data.weight(i) * d2[i];
      cum[i] = total;
    }
    std::size_t next;
    if (total <= 0.0) {
      // All mass already covered (duplicate points): any point works.
      std::uniform_int_distribution<std::size_t> unif(0, n - 1);
      next = unif(rng);
    } else {
      next = sample_from_prefix(cum, rng);
    }
    std::copy(data.point(next).begin(), data.point(next).end(),
              centers.row(c).begin());
    update_min_sq_dist(data.points(), centers.row_range(c, c + 1), d2,
                       point_norms);
  }
  return centers;
}

KMeansResult lloyd(const Dataset& data, Matrix initial_centers,
                   const KMeansOptions& opts) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(initial_centers.cols() == data.dim());
  const std::size_t n = data.size();
  const std::size_t k = initial_centers.rows();
  const std::size_t d = data.dim();

  KMeansResult res;
  res.centers = std::move(initial_centers);
  res.assignment.assign(n, 0);
  std::vector<double> sq_dist(n, 0.0);
  double prev_cost = std::numeric_limits<double>::infinity();

  // Point norms are invariant across iterations; computed once.
  const std::vector<double> point_norms = row_sq_norms(data.points());

  std::vector<double> cluster_weight(k, 0.0);
  Matrix sums(k, d);
  // Per-chunk accumulation slots for the parallel update step, merged in
  // chunk order below so the result is thread-count-independent. The
  // grain grows with n to cap the chunk count (and the k·d scratch per
  // chunk); it still depends only on n, never on the thread count.
  const std::size_t max_chunks = std::clamp<std::size_t>(
      kUpdateScratchDoubles / (k * d + k), 1, kMaxUpdateChunks);
  const std::size_t update_grain =
      std::max(kUpdateGrain, (n + max_chunks - 1) / max_chunks);
  const std::size_t chunks = parallel_chunk_count(n, update_grain);
  std::vector<double> part_sums(chunks * k * d, 0.0);
  std::vector<double> part_weight(chunks * k, 0.0);

  for (int it = 0; it < opts.max_iters; ++it) {
    // Assignment step (batched kernel; deterministic ordered cost).
    const double cost = assign_and_cost(data, res.centers, res.assignment,
                                        sq_dist, point_norms);
    res.cost = cost;
    res.iterations = it + 1;

    if (std::isfinite(prev_cost) &&
        prev_cost - cost <= opts.rel_tol * std::max(prev_cost, 1e-300)) {
      break;
    }
    prev_cost = cost;

    // Update step: per-chunk weighted sums, folded in chunk order.
    std::fill(part_sums.begin(), part_sums.end(), 0.0);
    std::fill(part_weight.begin(), part_weight.end(), 0.0);
    parallel_for_chunks(
        n, update_grain,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          double* psums = part_sums.data() + chunk * k * d;
          double* pweight = part_weight.data() + chunk * k;
          for (std::size_t i = begin; i < end; ++i) {
            const double w = data.weight(i);
            if (w == 0.0) continue;
            const std::size_t c = res.assignment[i];
            pweight[c] += w;
            const double* p = data.points().row_ptr(i);
            double* s = psums + c * d;
            for (std::size_t j = 0; j < d; ++j) s[j] += w * p[j];
          }
        });
    std::fill(cluster_weight.begin(), cluster_weight.end(), 0.0);
    std::fill(sums.flat().begin(), sums.flat().end(), 0.0);
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      const double* psums = part_sums.data() + chunk * k * d;
      const double* pweight = part_weight.data() + chunk * k;
      for (std::size_t c = 0; c < k; ++c) cluster_weight[c] += pweight[c];
      auto sf = sums.flat();
      for (std::size_t x = 0; x < k * d; ++x) sf[x] += psums[x];
    }

    for (std::size_t c = 0; c < k; ++c) {
      if (cluster_weight[c] > 0.0) {
        auto s = sums.row(c);
        auto ctr = res.centers.row(c);
        for (std::size_t j = 0; j < d; ++j) ctr[j] = s[j] / cluster_weight[c];
      } else {
        // Empty cluster: reseat the center on the point farthest from its
        // assigned center (distances from the assignment step; standard
        // repair, keeps k centers meaningful).
        double worst = -1.0;
        std::size_t worst_i = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (data.weight(i) > 0.0 && sq_dist[i] > worst) {
            worst = sq_dist[i];
            worst_i = i;
          }
        }
        std::copy(data.point(worst_i).begin(), data.point(worst_i).end(),
                  res.centers.row(c).begin());
        // Consume the point so a second empty cluster in the same
        // iteration reseats on a different one instead of duplicating.
        sq_dist[worst_i] = 0.0;
      }
    }
  }

  // Refresh cost/assignment for the final centers (the loop may have
  // updated centers after the last assignment).
  res.cost =
      assign_and_cost(data, res.centers, res.assignment, {}, point_norms);
  return res;
}

KMeansResult kmeans(const Dataset& data, const KMeansOptions& opts) {
  EKM_EXPECTS(opts.k >= 1);
  EKM_EXPECTS(!data.empty());

  KMeansResult best;
  best.cost = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, opts.restarts);
  for (int r = 0; r < restarts; ++r) {
    Rng rng = make_rng(opts.seed, static_cast<std::uint64_t>(r));
    Matrix seeds = kmeanspp_seed(data, opts.k, rng);
    KMeansResult res = lloyd(data, std::move(seeds), opts);
    if (res.cost < best.cost) best = std::move(res);
  }
  return best;
}

KMeansResult kmeans_brute_force(const Dataset& data, std::size_t k) {
  EKM_EXPECTS(k >= 1 && !data.empty());
  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  double combos = std::pow(static_cast<double>(k), static_cast<double>(n));
  EKM_EXPECTS_MSG(combos <= double(1 << 22), "instance too large for brute force");

  std::vector<std::size_t> assign(n, 0);
  std::vector<std::size_t> best_assign;
  double best_cost = std::numeric_limits<double>::infinity();

  // Enumerate all k^n assignments via an odometer.
  while (true) {
    // Centroids of the current assignment.
    Matrix centers(k, d);
    std::vector<double> w(k, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      w[assign[i]] += data.weight(i);
      auto p = data.point(i);
      auto c = centers.row(assign[i]);
      for (std::size_t j = 0; j < d; ++j) c[j] += data.weight(i) * p[j];
    }
    bool feasible = true;
    for (std::size_t c = 0; c < k; ++c) {
      if (w[c] > 0.0) {
        auto row = centers.row(c);
        for (std::size_t j = 0; j < d; ++j) row[j] /= w[c];
      }
    }
    if (feasible) {
      double cost = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        cost +=
            data.weight(i) * squared_distance(data.point(i), centers.row(assign[i]));
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_assign = assign;
      }
    }
    // Advance odometer.
    std::size_t pos = 0;
    while (pos < n && ++assign[pos] == k) {
      assign[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }

  // Rebuild the optimal centers from the best assignment.
  KMeansResult res;
  res.assignment = best_assign;
  res.cost = best_cost;
  res.centers = Matrix(k, d);
  std::vector<double> w(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    w[best_assign[i]] += data.weight(i);
    auto p = data.point(i);
    auto c = res.centers.row(best_assign[i]);
    for (std::size_t j = 0; j < d; ++j) c[j] += data.weight(i) * p[j];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (w[c] > 0.0) {
      auto row = res.centers.row(c);
      for (std::size_t j = 0; j < d; ++j) row[j] /= w[c];
    }
  }
  return res;
}

}  // namespace ekm
