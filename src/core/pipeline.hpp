// The paper's communication-efficient k-means pipelines.
//
// Single data source (§4):
//   NR            — transmit the raw dataset (baseline of Tables 3–4)
//   FSS           — Theorem 4.1's benchmark: the FSS coreset, basis on the
//                   wire (communication O(kd/ε²))
//   JL+FSS        — Algorithm 1 (communication O(k log n/ε⁴), device ˜O(nd/ε²))
//   FSS+JL        — Algorithm 2 (communication ˜O(k³/ε⁶), device O(nd·min(n,d)))
//   JL+FSS+JL     — Algorithm 3 (communication ˜O(k³/ε⁶), device ˜O(nd/ε²))
// Multiple data sources (§5):
//   BKLW          — Theorem 5.3's benchmark (communication O(mkd/ε²))
//   JL+BKLW       — Algorithm 4 (communication O(mk log n/ε⁴))
// Quantization (§6) applies to any of the above via
// `significant_bits < 52`: the rounding quantizer Γ runs on the coreset
// points right before transmission, and the wire billing drops to
// 12 + s bits per point coordinate.
//
// Every pipeline actually serializes its summary through a simulated
// Channel, times the source-side computation, and lets the server decode,
// solve weighted k-means and lift the centers back to the original space.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "data/dataset.hpp"
#include "kmeans/lloyd.hpp"
#include "linalg/matrix.hpp"
#include "net/channel.hpp"
#include "qt/policy.hpp"

namespace ekm {

enum class PipelineKind {
  kNoReduction,
  kFss,
  kJlFss,      // Algorithm 1
  kFssJl,      // Algorithm 2
  kJlFssJl,    // Algorithm 3
  kBklw,
  kJlBklw,     // Algorithm 4
};

[[nodiscard]] const char* pipeline_name(PipelineKind kind);
[[nodiscard]] bool pipeline_is_distributed(PipelineKind kind);

struct PipelineConfig {
  std::size_t k = 2;
  /// Overall approximation target: the per-stage ε of each algorithm is
  /// derived via core/calibration so all pipelines aim at (1+epsilon).
  double epsilon = 0.5;
  double delta = 0.1;
  std::uint64_t seed = 1;  ///< master seed; also the shared JL seed
  int significant_bits = 52;  ///< QT setting (52 = off)
  /// Per-frame quantization policy (qt/policy.hpp; scenario key
  /// `quant=`): kAdaptive lets a site narrow a coreset frame below
  /// `significant_bits` when the remaining round budget cannot carry
  /// the full width — graceful degradation instead of a deadline miss.
  /// kFixed (the default) is the paper's §6 billing, bit for bit.
  QuantPolicy quant_policy = QuantPolicy::kFixed;

  /// Overrides (0 = derive from k/ε/δ per the paper's formulas). The
  /// experiments in §7 tune these so all algorithms land at similar
  /// empirical error, mirroring "we have tuned the parameters".
  std::size_t coreset_size = 0;
  std::size_t jl_dim = 0;   ///< first (pre-CR) JL target dimension
  std::size_t jl_dim2 = 0;  ///< post-CR JL target (Algs 2–3); 0 = derive
                            ///< from the coreset cardinality n' = |S|
  std::size_t pca_dim = 0;

  /// Server-side weighted k-means solver settings (k is taken from `k`).
  int solver_restarts = 5;
  int solver_max_iters = 100;

  /// Deadline-driven rounds (src/sim/round_policy.hpp): each collection
  /// round of a distributed pipeline gets this wall-clock budget on the
  /// fabric's virtual clock; sites whose uplink has not delivered by
  /// the deadline are dropped from that round and the server
  /// aggregates over the partial responder set. Infinity (the default)
  /// reproduces the paper's wait-for-everyone protocol bit for bit.
  /// Only a time-aware Fabric (SimNetwork) can actually miss a
  /// deadline; over the synchronous Network this is a no-op.
  double round_deadline_s = std::numeric_limits<double>::infinity();
  /// Availability floor: a collection round that leaves fewer
  /// responding sites than this throws instead of aggregating a
  /// degenerate summary.
  std::size_t min_round_responders = 1;
  /// Deadline-aware budget reallocation (disSS step 4b): when a site
  /// misses the summary round, re-split its sample allocation among
  /// the responders in a second within-round wave so the server's
  /// coreset keeps ≈ the full sample budget. A round with no misses
  /// never opens a wave, so this cannot perturb fault-free or
  /// infinite-deadline runs. Scenario key `realloc=` can veto it.
  bool reallocate_budget = true;
  /// Fraction of a finite round budget reserved for the wave (see
  /// RoundPolicy::realloc_reserve). 0 (the default) keeps finite-
  /// deadline rounds exactly PR 3-shaped — the wave then only acts on
  /// unbounded rounds; the scenario (`realloc-reserve=`, or the
  /// deadline-fleet preset) schedules a positive reserve explicitly.
  double realloc_reserve = 0.0;
  /// Phase-overlap scheduling (RoundPolicy::overlap; scenario key
  /// `overlap=`, CLI `--overlap`). The protocols are already built as
  /// task graphs (src/sched/) whose merge barriers commit on *final*
  /// inputs; this flag only changes when a time-aware fabric lets the
  /// server learn that a straggler's frame expired (an out-of-band
  /// expiry NAK instead of waiting the round deadline out), so
  /// downstream phases start earlier on the virtual clock. Barriers
  /// never speculate, which keeps every fault-free or
  /// infinite-deadline run bitwise identical with this on or off; the
  /// Coordinator pushes the resolved setting onto the SimNetwork, and
  /// the synchronous Network ignores it (no clocks, nothing to
  /// overlap). Default off = PR 4's wait-out-the-round timing.
  bool overlap_phases = false;

  /// Cross-round pipelining (RoundPolicy::pipeline; scenario key
  /// `pipeline=`, CLI `--pipeline`). Two coupled changes: the task
  /// graphs let round r+1 depend only on round r's *committed* merge
  /// barrier (instead of every collect of round r), and the SimNetwork
  /// fires sender-side predicted-arrival NAKs so that barrier commits
  /// the moment each straggler's miss is provable — round r+1's
  /// broadcast then rides the fabric while round r's stragglers
  /// resolve, tracked per round in SimNetwork's RoundContext table.
  /// Barriers never speculate, so fault-free and infinite-deadline
  /// runs stay bitwise identical with this on or off; straggler fleets
  /// keep identical centers/ledgers/energy with strictly earlier
  /// server completion. Default off = PR 8's round-serial timing.
  bool pipeline_rounds = false;

  /// Optional flight recorder (src/obs/; non-owning, may be null = the
  /// default). The Coordinator attaches it to the SimNetwork it builds,
  /// from where the phase scheduler, the simulator, and adaptive
  /// quantization reach it through Fabric::recorder(). Recording is
  /// side-effect-free: it never draws randomness, pushes events, or
  /// touches a numeric path, so centers, ledgers, energy, and the
  /// event log are bitwise identical with this set or null.
  Recorder* recorder = nullptr;

  /// Optional device-side center refinement (an extension beyond the
  /// paper's protocol; 0 = off = paper-faithful).
  ///
  /// The paper lifts projected centers back with a Moore–Penrose inverse
  /// (line 7 of Algorithms 1–3). The min-norm preimage drops the center
  /// component orthogonal to the projection's row space, which costs
  /// little at the paper's k = 2 but grows with k (the lost part is the
  /// between-cluster variance not captured by the random subspace). With
  /// refine_iters > 0 the device runs that many local Lloyd iterations
  /// from the lifted centers — recovering the induced partition's
  /// original-space centroids, the recovery the JL k-means theory
  /// actually supports — and uplinks the final k·d center scalars. Device
  /// cost O(nd·k·iters); uplink grows by k·(d+1) scalars per iteration
  /// (distributed) or k·d once (single source), all measured on the
  /// ledger.
  int refine_iters = 0;
};

struct PipelineResult {
  Matrix centers;             ///< k x d, in the ORIGINAL space
  double device_seconds = 0;  ///< summed source-side computation time
  TrafficLedger uplink;       ///< measured source->server traffic
  TrafficLedger downlink;     ///< measured server->source traffic
  std::size_t summary_points = 0;  ///< |S| of the transmitted summary
};

/// Runs a single-source pipeline (kNoReduction, kFss, kJlFss, kFssJl,
/// kJlFssJl) end to end. Precondition: !pipeline_is_distributed(kind).
[[nodiscard]] PipelineResult run_pipeline(PipelineKind kind, const Dataset& data,
                                          const PipelineConfig& config);

/// Runs a multi-source pipeline (kNoReduction, kBklw, kJlBklw) over one
/// dataset per source through an idealized synchronous Network.
/// Precondition: kind is kNoReduction or distributed.
[[nodiscard]] PipelineResult run_distributed_pipeline(
    PipelineKind kind, std::span<const Dataset> parts,
    const PipelineConfig& config);

/// Same, but over a caller-provided fabric — the synchronous Network or
/// the discrete-event SimNetwork (src/sim/). All frames, ledgers and
/// randomness are identical either way; only delivery timing differs.
/// Precondition: net.num_sources() == parts.size().
[[nodiscard]] PipelineResult run_distributed_pipeline(
    PipelineKind kind, std::span<const Dataset> parts,
    const PipelineConfig& config, Fabric& net);

}  // namespace ekm
