// Reproduces Figure 4: single-source joint DR+CR+QT on the NeurIPS-scale
// dataset (same panels as Figure 3). The high-dimensional regime
// (d = Θ(n)) is where the four-step JL+FSS+JL+QT is predicted to win
// (§7.3.2 observation (iii)).
#include "bench/bench_qt_common.hpp"

using namespace ekm;
using namespace ekm::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const int mc = args.monte_carlo > 0 ? args.monte_carlo : (args.full ? 10 : 3);

  const Dataset data = neurips_dataset(args, /*n_fast=*/2000, /*d_fast=*/1000);
  ExperimentContext ctx(data, 2, args.seed);

  PipelineConfig cfg;
  cfg.epsilon = 0.3;
  cfg.seed = args.seed;
  cfg.coreset_size = std::max<std::size_t>(150, data.size() / 20);
  cfg.jl_dim = 96;
  cfg.jl_dim2 = 48;
  cfg.pca_dim = 24;

  run_qt_sweep("Fig4", "NeurIPS", ctx,
               {PipelineKind::kFss, PipelineKind::kJlFss, PipelineKind::kFssJl,
                PipelineKind::kJlFssJl},
               cfg, qt_sweep_grid(args.full), mc);
  return 0;
}
