// Reproduces Figure 2 (multi-source CDFs of normalized k-means cost and
// running time) and Table 4 (multi-source normalized communication cost).
//
// Paper protocol (§7.2): m = 10 data sources holding a random partition,
// k = 2, algorithms BKLW and JL+BKLW (Alg 4), baseline NR.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

using namespace ekm;
using namespace ekm::bench;

namespace {

void run_dataset(const char* label, const Dataset& data, int mc,
                 std::uint64_t seed) {
  std::printf("== %s: n=%zu d=%zu k=2 m=10, %d Monte-Carlo runs ==\n", label,
              data.size(), data.dim(), mc);
  ExperimentContext ctx(data, /*k=*/2, seed, /*num_sources=*/10);

  PipelineConfig cfg;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.coreset_size = std::max<std::size_t>(250, data.size() / 16);
  cfg.jl_dim = 96;
  cfg.jl_dim2 = 48;
  cfg.pca_dim = 20;

  std::vector<ExperimentSeries> all;
  all.push_back(ctx.run(PipelineKind::kNoReduction, cfg, 1));
  all.push_back(ctx.run(PipelineKind::kBklw, cfg, mc));
  all.push_back(ctx.run(PipelineKind::kJlBklw, cfg, mc));

  for (const ExperimentSeries& s : all) {
    if (s.name == "NR") continue;
    print_cdf(std::string("Fig2 ") + label + " normalized-cost", s.name,
              s.costs());
  }
  for (const ExperimentSeries& s : all) {
    if (s.name == "NR") continue;
    print_cdf(std::string("Fig2 ") + label + " running-time(s)", s.name,
              s.device_times());
  }

  std::printf("# Table 4 — %s normalized communication cost\n", label);
  for (const ExperimentSeries& s : all) {
    std::printf("%-12s %.3e\n", s.name.c_str(), summarize(s.comm_bits()).mean);
  }
  std::printf("# summary\n%s\n", format_series_table(all).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const int mc = args.monte_carlo > 0 ? args.monte_carlo : (args.full ? 10 : 5);

  run_dataset("MNIST", mnist_dataset(args), mc, args.seed);
  run_dataset("NeurIPS", neurips_dataset(args), mc, args.seed + 1);
  return 0;
}
