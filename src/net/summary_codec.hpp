// Wire format for data summaries (coresets, PCA factors, scalars).
//
// Encoders produce a `Message` whose `wire_bits` reflects the logical
// encoding width: coreset/ matrix *data* scalars quantized to s
// significand bits are billed 12 + s bits each, everything else (weights,
// Δ, headers, dimensions) at full 64-bit width. Decoders reverse the
// framing; round-trip tests assert exactness.
#pragma once

#include <cstdint>

#include "cr/coreset.hpp"
#include "linalg/matrix.hpp"
#include "net/channel.hpp"

namespace ekm {

/// Bits billed per data scalar when quantized to `significant_bits`
/// (52 = unquantized full double).
[[nodiscard]] std::uint64_t wire_bits_per_scalar(int significant_bits);

/// Wire bits a coreset frame would bill at `significant_bits`, without
/// encoding it — what adaptive quantization (qt/policy.hpp) weighs
/// against Fabric::uplink_airtime_s before committing to a width.
/// encode_coreset bills exactly this.
[[nodiscard]] std::uint64_t coreset_wire_bits(const Coreset& coreset,
                                              int significant_bits);

/// Encodes a coreset (S, Δ, w) — with optional subspace basis — into a
/// frame. `significant_bits` affects only the billing of the point
/// coordinates (the paper quantizes coreset points only; the basis, when
/// present, is part of the PCA summary and stays full-width).
[[nodiscard]] Message encode_coreset(const Coreset& coreset,
                                     int significant_bits = 52);

[[nodiscard]] Coreset decode_coreset(const Message& msg);

/// Encodes a dense matrix (e.g. the Σ_t1, V_t1 factors of disPCA, or raw
/// data for the NR baseline).
[[nodiscard]] Message encode_matrix(const Matrix& m, int significant_bits = 52);

[[nodiscard]] Matrix decode_matrix(const Message& msg);

/// Encodes a bare scalar (e.g. a local bicriteria cost in disSS step 1).
[[nodiscard]] Message encode_scalar(double value);

[[nodiscard]] double decode_scalar(const Message& msg);

}  // namespace ekm
