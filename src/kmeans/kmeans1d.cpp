#include "kmeans/kmeans1d.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace ekm {
namespace {

// Weighted SSE of the sorted range [i, j] around its weighted mean,
// computed from prefix sums in O(1):
//   sse(i, j) = sum w x² - (sum w x)² / sum w.
struct PrefixSums {
  std::vector<double> w;    // prefix of weights
  std::vector<double> wx;   // prefix of w * x
  std::vector<double> wxx;  // prefix of w * x²

  explicit PrefixSums(std::span<const double> xs, std::span<const double> ws) {
    const std::size_t n = xs.size();
    w.assign(n + 1, 0.0);
    wx.assign(n + 1, 0.0);
    wxx.assign(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      w[i + 1] = w[i] + ws[i];
      wx[i + 1] = wx[i] + ws[i] * xs[i];
      wxx[i + 1] = wxx[i] + ws[i] * xs[i] * xs[i];
    }
  }

  [[nodiscard]] double sse(std::size_t i, std::size_t j) const {  // [i, j]
    const double mass = w[j + 1] - w[i];
    if (mass <= 0.0) return 0.0;
    const double sum = wx[j + 1] - wx[i];
    const double sq = wxx[j + 1] - wxx[i];
    return std::max(0.0, sq - sum * sum / mass);
  }

  [[nodiscard]] double mean(std::size_t i, std::size_t j) const {
    const double mass = w[j + 1] - w[i];
    return mass > 0.0 ? (wx[j + 1] - wx[i]) / mass : 0.0;
  }
};

}  // namespace

KMeansResult kmeans_1d_exact(std::span<const double> values,
                             std::span<const double> weights, std::size_t k) {
  EKM_EXPECTS(!values.empty());
  EKM_EXPECTS(values.size() == weights.size());
  EKM_EXPECTS(k >= 1);
  const std::size_t n = values.size();
  const std::size_t kk = std::min(k, n);

  // Sort by value, carrying weights and original indices.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> xs(n);
  std::vector<double> ws(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = values[order[i]];
    ws[i] = weights[order[i]];
    EKM_EXPECTS_MSG(ws[i] >= 0.0, "negative weight");
  }
  const PrefixSums ps(xs, ws);

  // dp[c][j] = optimal cost of clustering xs[0..j] into c+1 clusters;
  // cut[c][j] = first index of the last cluster in that optimum.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(kk, std::vector<double>(n, kInf));
  std::vector<std::vector<std::size_t>> cut(kk, std::vector<std::size_t>(n, 0));
  for (std::size_t j = 0; j < n; ++j) dp[0][j] = ps.sse(0, j);
  for (std::size_t c = 1; c < kk; ++c) {
    for (std::size_t j = c; j < n; ++j) {
      for (std::size_t i = c; i <= j; ++i) {
        const double cand = dp[c - 1][i - 1] + ps.sse(i, j);
        if (cand < dp[c][j]) {
          dp[c][j] = cand;
          cut[c][j] = i;
        }
      }
    }
  }

  // Backtrack cluster boundaries.
  std::vector<std::pair<std::size_t, std::size_t>> ranges(kk);
  std::size_t j = n - 1;
  for (std::size_t c = kk; c-- > 0;) {
    const std::size_t i = (c == 0) ? 0 : cut[c][j];
    ranges[c] = {i, j};
    if (c > 0) j = i - 1;
  }

  KMeansResult res;
  res.cost = dp[kk - 1][n - 1];
  res.centers = Matrix(kk, 1);
  res.assignment.assign(n, 0);
  for (std::size_t c = 0; c < kk; ++c) {
    res.centers(c, 0) = ps.mean(ranges[c].first, ranges[c].second);
    for (std::size_t p = ranges[c].first; p <= ranges[c].second; ++p) {
      res.assignment[order[p]] = c;
    }
  }
  res.iterations = 1;
  return res;
}

KMeansResult kmeans_1d_exact(std::span<const double> values, std::size_t k) {
  const std::vector<double> ones(values.size(), 1.0);
  return kmeans_1d_exact(values, ones, k);
}

}  // namespace ekm
