#include "data/loaders.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ekm {
namespace {

std::uint32_t read_be_u32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (!in) throw std::runtime_error("IDX file truncated");
  return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
         (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
}

}  // namespace

Dataset load_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());

  std::vector<double> values;
  std::size_t cols = 0;
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::replace(line.begin(), line.end(), ',', ' ');
    std::istringstream ls(line);
    std::size_t c = 0;
    double v = 0.0;
    while (ls >> v) {
      values.push_back(v);
      ++c;
    }
    if (c == 0) continue;
    if (cols == 0) cols = c;
    if (c != cols) {
      throw std::runtime_error("ragged CSV row in " + path.string());
    }
    ++rows;
  }
  if (rows == 0) throw std::runtime_error("empty CSV " + path.string());
  return Dataset(Matrix(rows, cols, std::move(values)));
}

std::optional<Dataset> load_idx_images(const std::filesystem::path& path,
                                       std::size_t max_rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  const std::uint32_t magic = read_be_u32(in);
  if (magic != 0x0803) {
    throw std::runtime_error("not an IDX3 image file: " + path.string());
  }
  const std::uint32_t count = read_be_u32(in);
  const std::uint32_t h = read_be_u32(in);
  const std::uint32_t w = read_be_u32(in);
  const std::size_t n =
      max_rows > 0 ? std::min<std::size_t>(count, max_rows) : count;
  const std::size_t d = static_cast<std::size_t>(h) * w;

  Matrix pts(n, d);
  std::vector<unsigned char> buf(d);
  for (std::size_t i = 0; i < n; ++i) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(d));
    if (!in) throw std::runtime_error("IDX image data truncated");
    auto row = pts.row(i);
    for (std::size_t j = 0; j < d; ++j) row[j] = buf[j] / 255.0;
  }
  return Dataset(std::move(pts));
}

Dataset load_or_generate_mnist(const std::filesystem::path& data_dir,
                               std::size_t n, Rng& rng) {
  auto real = load_idx_images(data_dir / "train-images-idx3-ubyte", n);
  if (real) {
    normalize_zero_mean_unit_range(*real);
    return std::move(*real);
  }
  MnistLikeSpec spec;
  spec.n = n;
  return make_mnist_like(spec, rng);
}

Dataset load_or_generate_neurips(const std::filesystem::path& data_dir,
                                 std::size_t n, std::size_t dim, Rng& rng) {
  const auto csv = data_dir / "neurips_counts.csv";
  if (std::filesystem::exists(csv)) {
    Dataset real = load_csv(csv);
    normalize_zero_mean_unit_range(real);
    return real;
  }
  NeuripsLikeSpec spec;
  spec.n = n;
  spec.dim = dim;
  return make_neurips_like(spec, rng);
}

}  // namespace ekm
