#include "dr/jl.hpp"

#include <cmath>
#include <random>

namespace ekm {

std::size_t jl_target_dim(double epsilon, std::size_t n_points, std::size_t k,
                          double delta) {
  EKM_EXPECTS(epsilon > 0.0 && epsilon < 1.0);
  EKM_EXPECTS(delta > 0.0 && delta < 1.0);
  EKM_EXPECTS(n_points >= 1 && k >= 1);
  const double nk = static_cast<double>(n_points) * static_cast<double>(k);
  const double dim = std::ceil(8.0 * std::log(4.0 * nk / delta) /
                               (epsilon * epsilon));
  return static_cast<std::size_t>(std::max(1.0, dim));
}

LinearMap make_jl_projection(std::size_t input_dim, std::size_t output_dim,
                             std::uint64_t seed, JlFamily family) {
  EKM_EXPECTS(input_dim >= 1 && output_dim >= 1);
  Rng rng = make_rng(seed, 0x4a4cULL);  // stream tag "JL"
  Matrix pi(input_dim, output_dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(output_dim));

  switch (family) {
    case JlFamily::kGaussian: {
      std::normal_distribution<double> dist(0.0, scale);
      for (double& v : pi.flat()) v = dist(rng);
      break;
    }
    case JlFamily::kRademacher: {
      std::bernoulli_distribution coin(0.5);
      for (double& v : pi.flat()) v = coin(rng) ? scale : -scale;
      break;
    }
    case JlFamily::kSparse: {
      // Achlioptas: sqrt(3/d') * (+1 w.p. 1/6, -1 w.p. 1/6, 0 w.p. 2/3).
      const double s3 = std::sqrt(3.0) * scale;
      std::uniform_int_distribution<int> die(0, 5);
      for (double& v : pi.flat()) {
        const int r = die(rng);
        v = (r == 0) ? s3 : (r == 1) ? -s3 : 0.0;
      }
      break;
    }
  }
  return LinearMap(std::move(pi));
}

}  // namespace ekm
