// Tests for hierarchical aggregation (topology=tree): the shared
// associative-merge layer's order contracts (permutation-invariant
// multisets, bitwise-stable fixed folds), TreeTopology's shape
// arithmetic and per-level deadline split, star-vs-tree bitwise parity
// on a fault-free fleet, EKM_THREADS determinism on a 3-gateway fleet,
// and the scenario grammar's build-time rejection of malformed or
// misplaced tree keys.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "cr/merge.hpp"
#include "data/generators.hpp"
#include "linalg/frequent_directions.hpp"
#include "net/topology.hpp"
#include "sim/coordinator.hpp"
#include "sim/scenario.hpp"

namespace ekm {
namespace {

std::vector<Dataset> make_parts(std::size_t m, std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.k = 4;
  Rng rng = make_rng(seed, 0xdadaULL);
  const Dataset data = make_gaussian_mixture(spec, rng);
  Rng part_rng = make_rng(seed, 0x9a87ULL);
  return partition_random(data, m, part_rng);
}

PipelineConfig base_config(std::uint64_t seed = 11) {
  PipelineConfig cfg;
  cfg.k = 3;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.coreset_size = 200;
  cfg.pca_dim = 8;
  return cfg;
}

Coreset make_coreset(std::size_t n, std::size_t d, std::uint64_t salt) {
  Rng rng = make_rng(97, salt);
  std::normal_distribution<double> normal;
  std::uniform_real_distribution<double> uniform;
  Matrix pts(n, d);
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) pts(i, j) = normal(rng);
    weights[i] = 1.0 + uniform(rng);
  }
  Coreset c;
  c.points = Dataset(std::move(pts), std::move(weights));
  return c;
}

/// A dataset's weighted rows as a sortable multiset.
std::vector<std::vector<double>> weighted_rows(const Dataset& ds) {
  std::vector<std::vector<double>> rows;
  rows.reserve(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    auto p = ds.point(i);
    std::vector<double> row(p.begin(), p.end());
    row.push_back(ds.weight(i));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(Merge, WeightedUnionIsOrderInvariantAndStable) {
  const Coreset a = make_coreset(7, 4, 0xaULL);
  const Coreset b = make_coreset(5, 4, 0xbULL);

  const Dataset ab = merge_weighted(a, b);
  const Dataset ba = merge_weighted(b, a);
  ASSERT_EQ(ab.size(), 12u);
  ASSERT_EQ(ba.size(), 12u);
  // Permuting the operands permutes rows but preserves the weighted
  // point multiset exactly — no tolerance needed, the merge never
  // touches a coordinate.
  EXPECT_EQ(weighted_rows(ab), weighted_rows(ba));
  EXPECT_NE(ab.point(0)[0], ba.point(0)[0]);  // but the order did move

  // Fixed operand order is bitwise stable across repeated folds.
  const Dataset again = merge_weighted(a, b);
  ASSERT_EQ(again.size(), ab.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    auto x = ab.point(i);
    auto y = again.point(i);
    EXPECT_TRUE(std::equal(x.begin(), x.end(), y.begin()));
    EXPECT_EQ(ab.weight(i), again.weight(i));
  }
}

TEST(Merge, UnionSkipsEmptiesAndConcatenatesInOrder) {
  const Coreset a = make_coreset(3, 4, 0xcULL);
  const Coreset b = make_coreset(2, 4, 0xdULL);
  std::vector<Dataset> pieces;
  pieces.push_back({});
  pieces.push_back(a.points);
  pieces.push_back({});
  pieces.push_back(b.points);
  const Dataset u = merge_union(std::move(pieces));
  ASSERT_EQ(u.size(), 5u);
  // Concatenation order: a's rows then b's rows, coordinates untouched.
  EXPECT_EQ(u.point(0)[0], a.points.point(0)[0]);
  EXPECT_EQ(u.point(3)[0], b.points.point(0)[0]);
  EXPECT_EQ(u.weight(4), b.points.weight(1));

  EXPECT_EQ(merge_union({}).size(), 0u);
  std::vector<Dataset> empties(3);
  EXPECT_EQ(merge_union(std::move(empties)).size(), 0u);
}

TEST(Merge, FrequentDirectionsMergeOrderInvariantWithinBound) {
  const std::size_t d = 6, l = 8;
  Rng rng = make_rng(41, 0xfdULL);
  std::normal_distribution<double> normal;
  FrequentDirections fd_a(l, d), fd_b(l, d);
  double stream_norm2 = 0.0;
  std::vector<double> row(d);
  for (std::size_t i = 0; i < 64; ++i) {
    for (double& x : row) x = normal(rng);
    for (double x : row) stream_norm2 += x * x;
    (i % 2 == 0 ? fd_a : fd_b).insert(row);
  }

  FrequentDirections ab = fd_a, ba = fd_b;
  FrequentDirections a2 = fd_a, b2 = fd_b;
  ab.merge(b2);
  ba.merge(a2);

  // Both merge orders sketch the same 64-row stream, so their Gram
  // matrices agree within the additive FD bound ||A||_F^2 / l per
  // sketch (2/l combined, times sqrt(d) to pass to Frobenius norm).
  Matrix sa = ab.sketch();
  Matrix sb = ba.sketch();
  double diff2 = 0.0;
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      double ga = 0.0, gb = 0.0;
      for (std::size_t i = 0; i < sa.rows(); ++i) ga += sa(i, r) * sa(i, c);
      for (std::size_t i = 0; i < sb.rows(); ++i) gb += sb(i, r) * sb(i, c);
      diff2 += (ga - gb) * (ga - gb);
    }
  }
  const double bound = 2.0 * std::sqrt(static_cast<double>(d)) *
                       stream_norm2 / static_cast<double>(l);
  EXPECT_LE(std::sqrt(diff2), bound);

  // The same fold order replayed is bitwise stable.
  FrequentDirections ab2 = fd_a, b3 = fd_b;
  ab2.merge(b3);
  EXPECT_EQ(ab2.sketch(), sa);
}

TEST(TreeTopology, ShapeArithmeticAndDeadlineSplit) {
  TreeTopology t;
  t.sites = 10;
  t.branching = 4;
  EXPECT_EQ(t.gateways(), 3u);
  EXPECT_EQ(t.gateway_of(0), 0u);
  EXPECT_EQ(t.gateway_of(7), 1u);
  EXPECT_EQ(t.gateway_of(9), 2u);
  EXPECT_EQ(t.child_begin(2), 8u);
  EXPECT_EQ(t.child_end(2), 10u);  // last gateway takes the remainder
  EXPECT_EQ(t.fan_in(0), 4u);
  EXPECT_EQ(t.fan_in(2), 2u);

  // A finite budget splits along level_split; an unbounded round stays
  // unbounded at both levels.
  t.level_split = 0.25;
  EXPECT_DOUBLE_EQ(t.level0_deadline(10.0, 8.0), 10.0 - 0.75 * 8.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(t.level0_deadline(inf, inf), inf);
}

TEST(Tree, StarAndTreeAgreeBitwiseOnFaultFreeFleet) {
  const auto parts = make_parts(12, 2400, 16, 7);
  const PipelineConfig cfg = base_config(7);
  const Coordinator star(parse_scenario("radio=wifi,seed=7"));
  const Coordinator tree(
      parse_scenario("radio=wifi,seed=7,topology=tree,branching=4"));

  const SimReport s = star.run(PipelineKind::kBklw, parts, cfg);
  const SimReport t = tree.run(PipelineKind::kBklw, parts, cfg);

  // The contract: a fault-free tree is the star model bit for bit —
  // same centers, same summary, same level-0 ledger (site uplinks are
  // the paper's metric; the gateway hop is billed separately).
  EXPECT_EQ(t.result.centers, s.result.centers);
  EXPECT_EQ(t.result.summary_points, s.result.summary_points);
  EXPECT_EQ(t.result.uplink, s.result.uplink);

  // What the tree changes: the server's fan-in collapses to the
  // gateway count and the level-1 hop appears in its own ledger.
  EXPECT_EQ(s.server_fan_in, 12u);
  EXPECT_EQ(s.gateways, 0u);
  EXPECT_EQ(t.gateways, 3u);
  EXPECT_EQ(t.branching, 4u);
  EXPECT_EQ(t.server_fan_in, 3u);
  EXPECT_GT(t.gateway_uplink_bits, 0u);
  EXPECT_EQ(s.gateway_uplink_bits, 0u);
  EXPECT_GT(t.queue_high_water, 0u);
  EXPECT_EQ(t.sites_dropped, 0u);

  // branching >= fleet degenerates to the star path exactly.
  const Coordinator degenerate(
      parse_scenario("radio=wifi,seed=7,topology=tree,branching=16"));
  const SimReport dg = degenerate.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_EQ(dg.gateways, 0u);
  EXPECT_EQ(dg.result.centers, s.result.centers);
  EXPECT_EQ(dg.result.uplink, s.result.uplink);
  EXPECT_EQ(dg.completion_seconds, s.completion_seconds);
}

TEST(Tree, DeterministicAcrossThreadCountsOnThreeGatewayFleet) {
  const auto parts = make_parts(12, 1800, 16, 23);
  const PipelineConfig cfg = base_config(23);
  const Coordinator coord(
      parse_scenario("lossy-mesh,seed=23,topology=tree,branching=4"));

  set_parallel_threads(1);
  const SimReport one = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(8);
  const SimReport eight = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(0);

  ASSERT_EQ(one.event_log.size(), eight.event_log.size());
  for (std::size_t i = 0; i < one.event_log.size(); ++i) {
    EXPECT_EQ(one.event_log[i], eight.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(one.completion_seconds, eight.completion_seconds);
  EXPECT_EQ(one.energy_joules, eight.energy_joules);
  EXPECT_EQ(one.result.uplink, eight.result.uplink);
  EXPECT_EQ(one.result.centers, eight.result.centers);
  EXPECT_EQ(one.gateway_uplink_bits, eight.gateway_uplink_bits);
  EXPECT_EQ(one.queue_high_water, eight.queue_high_water);
}

TEST(Tree, ScenarioGrammarRejectsMalformedOrMisplacedKeys) {
  // Tree-only keys are rejected under star — at parse time, naming the
  // offending key so a fat-fingered spec fails the build, not the run.
  EXPECT_THROW((void)parse_scenario("branching=4"), precondition_error);
  EXPECT_THROW((void)parse_scenario("level-split=0.5"), precondition_error);
  try {
    (void)parse_scenario("gateway0.loss=0.1");
    FAIL() << "gatewayN.* without topology=tree must not parse";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("gateway0.loss"), std::string::npos);
  }

  // Malformed values name themselves too.
  EXPECT_THROW((void)parse_scenario("topology=ring"), precondition_error);
  EXPECT_THROW((void)parse_scenario("topology=tree"), precondition_error);
  EXPECT_THROW((void)parse_scenario("topology=tree,branching=1"),
               precondition_error);
  EXPECT_THROW((void)parse_scenario("topology=tree,branching=4,level-split=1"),
               precondition_error);
  EXPECT_THROW((void)parse_scenario("topology=tree,branching=4,level-split=0"),
               precondition_error);
  EXPECT_THROW((void)parse_scenario("topology=tree,branching=x"),
               precondition_error);

  // The full grammar parses when the keys agree.
  const SimScenario ok = parse_scenario(
      "topology=tree,branching=4,level-split=0.5,gateway0.loss=0.1");
  EXPECT_EQ(ok.topology, SimTopology::kTree);
  EXPECT_EQ(ok.branching, 4u);
  ASSERT_EQ(ok.gateway_overrides.size(), 1u);
  EXPECT_EQ(ok.gateway_overrides[0].site, 0u);
}

TEST(Tree, CoordinatorRejectsUnsupportedCombinations) {
  const auto parts = make_parts(8, 800, 8, 3);
  const PipelineConfig cfg = base_config(3);

  // A gateway override past the derived gateway count names the key.
  const Coordinator bad_gw(parse_scenario(
      "radio=wifi,topology=tree,branching=4,gateway7.loss=0.5"));
  try {
    (void)bad_gw.run(PipelineKind::kBklw, parts, cfg);
    FAIL() << "gateway override past the tree must not run";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("gateway7.loss"), std::string::npos);
  }

  // No-reduction ships raw points a gateway cannot merge.
  const Coordinator tree(
      parse_scenario("radio=wifi,topology=tree,branching=4"));
  EXPECT_THROW((void)tree.run(PipelineKind::kNoReduction, parts, cfg),
               precondition_error);

  // Streaming needs each site's summary individually replaceable.
  StreamingCoresetOptions sopts;
  sopts.coreset_size = 60;
  sopts.seed = 3;
  EXPECT_THROW((void)tree.run_streaming(parts, sopts, cfg, 2),
               precondition_error);
}

// --- cross-round pipelining on a tree (RoundPolicy::pipeline) -------------

TEST(Pipeline, LateGatewayReduceNeverAliasesTheNextRound) {
  // The inner fabric of a tree carries sites + gateways as ordinary
  // sources; a gateway's reduce rides its uplink like any site frame.
  // Model a 2-site + 1-gateway inner fleet where the gateway (index 2)
  // is behind a 1 kbps link: its round-r reduce is still on the air
  // when round r+1 opens. Round r's receive consumes the late frame
  // (abandoning it); an r+1-scoped receive reaching the same link
  // while the r frame is queued is cross-round aliasing and must trip
  // the fabric's assert rather than hand round r's data to round r+1.
  SimNetwork net(3, parse_scenario("radio=wifi,site2.bandwidth=1000"));
  net.set_round_pipelining(true);
  const auto send_reduce = [&] {
    Message msg;
    msg.payload.resize(1 << 14);
    msg.wire_bits = 100'000;  // ~100 s at 1 kbps: late for any 2 s round
    msg.scalars = 4;
    net.uplink(2).send(std::move(msg));
  };

  // Correct lifecycle: the round that sent the frame receives it.
  const RoundId r1 = net.open_round(2.0);
  send_reduce();
  const RoundId r2 = net.open_round(2.0);  // pipelined round r+1 opens
  EXPECT_FALSE(net.uplink(2).receive_by(r1).has_value());  // late → miss
  send_reduce();
  EXPECT_FALSE(net.uplink(2).receive_by(r2).has_value());

  // Violation: a frame sent under r3 but reached for with r4's handle.
  const RoundId r3 = net.open_round(2.0);
  send_reduce();
  const RoundId r4 = net.open_round(2.0);
  EXPECT_GT(r4, r3);
  EXPECT_THROW((void)net.uplink(2).receive_by(r4), precondition_error);
}

TEST(Pipeline, StragglingGatewayFleetKeepsResultsAndCommitsEarlier) {
  // One gateway behind a 2 kbps link under a 3 s round with give-up
  // retry: its reduces expire at ready without keying the radio, so
  // pipelining changes *when the server learns* (predicted-arrival NAK
  // at the provable miss instead of the round cutoff) and nothing
  // else — centers, ledgers, energy, misses all bit-identical, with a
  // strictly earlier server commit bounded below by the critical path.
  const auto parts = make_parts(12, 2400, 16, 7);
  const PipelineConfig cfg = base_config(7);
  const char* base =
      "radio=wifi,deadline=3,retry=giveup,topology=tree,branching=4,"
      "gateway0.bandwidth=2000,seed=7";
  const Coordinator off(parse_scenario(base));
  const Coordinator on(parse_scenario(std::string(base) + ",pipeline=on"));

  const SimReport plain = off.run(PipelineKind::kBklw, parts, cfg);
  const SimReport piped = on.run(PipelineKind::kBklw, parts, cfg);

  ASSERT_GT(plain.deadline_misses, 0u);  // the gateway really straggled
  EXPECT_EQ(piped.result.centers, plain.result.centers);
  EXPECT_EQ(piped.result.uplink, plain.result.uplink);
  EXPECT_EQ(piped.result.downlink, plain.result.downlink);
  EXPECT_EQ(piped.energy_joules, plain.energy_joules);
  EXPECT_EQ(piped.deadline_misses, plain.deadline_misses);
  EXPECT_EQ(piped.gateway_uplink_bits, plain.gateway_uplink_bits);
  EXPECT_LT(piped.server_completion_seconds, plain.server_completion_seconds);
  EXPECT_GE(piped.server_completion_seconds,
            piped.server_critical_path_seconds);
  EXPECT_GE(plain.server_completion_seconds,
            plain.server_critical_path_seconds);
}

TEST(Pipeline, TreeDeterministicAcrossThreadCountsWithPipelining) {
  const auto parts = make_parts(12, 1800, 16, 23);
  const PipelineConfig cfg = base_config(23);
  const Coordinator coord(parse_scenario(
      "lossy-mesh,seed=23,topology=tree,branching=4,deadline=4,"
      "retry=giveup,pipeline=on"));

  set_parallel_threads(1);
  const SimReport one = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(8);
  const SimReport eight = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(0);

  ASSERT_EQ(one.event_log.size(), eight.event_log.size());
  for (std::size_t i = 0; i < one.event_log.size(); ++i) {
    EXPECT_EQ(one.event_log[i], eight.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(one.completion_seconds, eight.completion_seconds);
  EXPECT_EQ(one.server_completion_seconds, eight.server_completion_seconds);
  EXPECT_EQ(one.server_critical_path_seconds,
            eight.server_critical_path_seconds);
  EXPECT_EQ(one.energy_joules, eight.energy_joules);
  EXPECT_EQ(one.result.uplink, eight.result.uplink);
  EXPECT_EQ(one.result.centers, eight.result.centers);
  EXPECT_EQ(one.gateway_uplink_bits, eight.gateway_uplink_bits);
}

}  // namespace
}  // namespace ekm
