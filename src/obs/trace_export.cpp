#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/attribution.hpp"
#include "obs/json_util.hpp"

namespace ekm {
namespace {

// Track layout inside the virtual-time process (pid 1): tid 0 is the
// server, tid 1+i is actor i (a data site, or — past the recorder's
// data_sites() split — an aggregation gateway), the event queue rides
// one past the highest actor track, and the critical path gets its own
// track one past that. Wall-clock kernel spans live in their own
// process (pid 2) so Perfetto never tries to align wall and virtual
// timestamps on one timeline.
constexpr int kVirtualPid = 1;
constexpr int kHostPid = 2;

std::uint64_t virtual_tid(std::size_t actor) {
  return actor == kRecorderServerActor ? 0 : 1 + actor;
}

void emit_thread_name(std::FILE* f, int pid, std::uint64_t tid,
                      const std::string& name, bool& first) {
  std::fprintf(f,
               "%s  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": %d, "
               "\"tid\": %llu, \"args\": {\"name\": \"%s\"}}",
               first ? "" : ",\n", pid, static_cast<unsigned long long>(tid),
               json_escape(name).c_str());
  first = false;
}

/// One `ph:"s"`/`ph:"f"` flow pair — the causal arrow Perfetto draws
/// between two tracks. `bp:"e"` binds the finish to the enclosing
/// slice's end so arrows land on span edges, not slice starts.
void emit_flow(std::FILE* f, std::uint64_t id, const char* name,
               std::uint64_t from_tid, double from_ts_us,
               std::uint64_t to_tid, double to_ts_us, bool critical) {
  const char* cp_arg = critical ? ", \"args\": {\"cp\": 1}" : "";
  std::fprintf(f,
               ",\n  {\"ph\": \"s\", \"id\": %llu, \"name\": \"%s\", "
               "\"cat\": \"flow\", \"pid\": %d, \"tid\": %llu, "
               "\"ts\": %.17g%s}",
               static_cast<unsigned long long>(id), name, kVirtualPid,
               static_cast<unsigned long long>(from_tid), from_ts_us, cp_arg);
  std::fprintf(f,
               ",\n  {\"ph\": \"f\", \"bp\": \"e\", \"id\": %llu, "
               "\"name\": \"%s\", \"cat\": \"flow\", \"pid\": %d, "
               "\"tid\": %llu, \"ts\": %.17g%s}",
               static_cast<unsigned long long>(id), name, kVirtualPid,
               static_cast<unsigned long long>(to_tid), to_ts_us, cp_arg);
}

const char* hop_name(const CriticalHop& hop) {
  switch (hop.kind) {
    case ServerOpKind::kCompute: return "server compute";
    case ServerOpKind::kDownlinkForward: return "downlink";
    case ServerOpKind::kUplinkArrival: return "uplink arrival";
    default: return "cp";
  }
}

}  // namespace

bool write_chrome_trace(const Recorder& recorder, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  // Discover the fleet size from what was recorded, so the queue and
  // critical-path tracks land just past the last actor track.
  std::size_t max_site = 0;
  bool any_site = false;
  for (const RecordedSpan& s : recorder.spans()) {
    if (!s.wall && s.actor != kRecorderServerActor) {
      max_site = std::max(max_site, s.actor);
      any_site = true;
    }
  }
  for (const RecordedEvent& e : recorder.events()) {
    max_site = std::max(max_site, static_cast<std::size_t>(e.site));
    any_site = true;
  }
  const std::uint64_t queue_tid = any_site ? max_site + 2 : 1;
  const std::uint64_t cp_tid = queue_tid + 1;

  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  bool first = true;

  // Metadata: name the processes and every track we will emit onto.
  // Actors past the declared data-site split are aggregation gateways
  // (tree runs; star runs have no split and name every actor a site).
  std::fprintf(f,
               "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, "
               "\"args\": {\"name\": \"virtual time (simulated fabric)\"}}",
               kVirtualPid);
  first = false;
  std::fprintf(f,
               ",\n  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, "
               "\"args\": {\"name\": \"host wall clock (kernels)\"}}",
               kHostPid);
  emit_thread_name(f, kVirtualPid, 0, "server", first);
  if (any_site) {
    const std::size_t data_sites = recorder.data_sites();
    for (std::size_t i = 0; i <= max_site; ++i) {
      const std::string name =
          i < data_sites ? "site " + std::to_string(i)
                         : "gateway " + std::to_string(i - data_sites);
      emit_thread_name(f, kVirtualPid, 1 + i, name, first);
    }
  }
  emit_thread_name(f, kVirtualPid, queue_tid, "event queue", first);
  emit_thread_name(f, kVirtualPid, cp_tid, "critical path", first);
  emit_thread_name(f, kHostPid, 0, "kernels", first);

  for (const RecordedSpan& s : recorder.spans()) {
    const int pid = s.wall ? kHostPid : kVirtualPid;
    const std::uint64_t tid = s.wall ? 0 : virtual_tid(s.actor);
    const double ts_us = s.start_s * 1e6;
    const double dur_us = (s.finish_s - s.start_s) * 1e6;
    std::fprintf(f,
                 ",\n  {\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", "
                 "\"pid\": %d, \"tid\": %llu, \"ts\": %.17g, \"dur\": %.17g}",
                 json_escape(s.label).c_str(), json_escape(s.kind).c_str(),
                 pid, static_cast<unsigned long long>(tid), ts_us,
                 dur_us < 0.0 ? 0.0 : dur_us);
  }

  for (const RecordedEvent& e : recorder.events()) {
    std::fprintf(
        f,
        ",\n  {\"ph\": \"i\", \"name\": \"%s\", \"cat\": \"frame\", "
        "\"pid\": %d, \"tid\": %llu, \"ts\": %.17g, \"s\": \"t\", "
        "\"args\": {\"site\": %u, \"uplink\": %s, \"attempt\": %u, "
        "\"bits\": %llu}}",
        e.name, kVirtualPid, static_cast<unsigned long long>(queue_tid),
        e.time_s * 1e6, e.site, e.uplink ? "true" : "false",
        static_cast<unsigned>(e.attempt),
        static_cast<unsigned long long>(e.bits));
  }

  // Frames-in-flight counter (`ph:"C"`): every on-air attempt opens at
  // its kSendStart and closes at its kDeliver or kDrop — exactly one of
  // which exists per attempt — so the running sum is the number of
  // frames on the air. Events were recorded in queue-pop order, which
  // is not time order; a stable sort by time keeps simultaneous events
  // in their recorded (deterministic) order.
  {
    const std::vector<RecordedEvent>& events = recorder.events();
    std::vector<std::size_t> order(events.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&events](std::size_t a, std::size_t b) {
                       return events[a].time_s < events[b].time_s;
                     });
    std::int64_t in_flight = 0;
    for (const std::size_t i : order) {
      const RecordedEvent& e = events[i];
      if (std::strcmp(e.name, "send") == 0) {
        in_flight += 1;
      } else if (std::strcmp(e.name, "deliver") == 0 ||
                 std::strcmp(e.name, "drop") == 0) {
        in_flight -= 1;
      } else {
        continue;
      }
      std::fprintf(f,
                   ",\n  {\"ph\": \"C\", \"name\": \"sim.frames_in_flight\", "
                   "\"pid\": %d, \"ts\": %.17g, "
                   "\"args\": {\"frames\": %lld}}",
                   kVirtualPid, e.time_s * 1e6,
                   static_cast<long long>(in_flight));
    }
  }

  // Queue high-water counter: one sample per closed round, placed at
  // the round's commit time. Cumulative by construction (the queue
  // never forgets its peak), so the curve is a running maximum.
  for (const RoundSnapshot& snap : recorder.rounds()) {
    std::fprintf(f,
                 ",\n  {\"ph\": \"C\", \"name\": \"sim.queue_high_water\", "
                 "\"pid\": %d, \"ts\": %.17g, \"args\": {\"events\": %llu}}",
                 kVirtualPid, snap.server_time_s * 1e6,
                 static_cast<unsigned long long>(snap.queue_high_water));
  }

  // Causal arrows. Scheduler-recorded task-graph edges first, then the
  // attribution layer's critical path: one X span per hop on the
  // dedicated track (tagged cp=1) and one flow arrow per consumed
  // arrival from the sender's delivering attempt to the server.
  std::uint64_t flow_id = 0;
  for (const RecordedFlow& flow : recorder.flows()) {
    emit_flow(f, ++flow_id, flow.critical ? "cp" : "dep",
              virtual_tid(flow.from_actor), flow.from_s * 1e6,
              virtual_tid(flow.to_actor), flow.to_s * 1e6, flow.critical);
  }
  for (const RunAttribution& run : attribute_all_runs(recorder)) {
    for (const CriticalHop& hop : run.hops) {
      std::fprintf(f,
                   ",\n  {\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"cp\", "
                   "\"pid\": %d, \"tid\": %llu, \"ts\": %.17g, "
                   "\"dur\": %.17g, \"args\": {\"cp\": 1, \"site\": %u}}",
                   hop_name(hop), kVirtualPid,
                   static_cast<unsigned long long>(cp_tid),
                   hop.cp_before_s * 1e6,
                   (hop.cp_after_s - hop.cp_before_s) * 1e6, hop.site);
      if (hop.kind == ServerOpKind::kUplinkArrival &&
          hop.frame != kNoCausalFrame &&
          hop.frame < recorder.frame_causals().size()) {
        const FrameCausal& fc = recorder.frame_causals()[hop.frame];
        emit_flow(f, ++flow_id, "cp", virtual_tid(fc.site),
                  fc.send_start_s * 1e6, virtual_tid(kRecorderServerActor),
                  fc.arrival_s * 1e6, /*critical=*/true);
      }
    }
  }

  std::fprintf(f, "\n]}\n");
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_metrics_jsonl(const Recorder& recorder, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  // Annotate each round's line with its attribution when the recorded
  // op stream aligns with the snapshots (it always does for fabric-
  // driven runs; hand-driven recorders with no ops just skip this).
  // The concatenation of every run segment's rounds matches rounds()
  // in order, one entry per snapshot.
  std::vector<std::string> members;
  for (const RunAttribution& run : attribute_all_runs(recorder)) {
    for (const RoundBlame& row : run.rounds) {
      members.push_back(render_attribution_member(row));
    }
  }
  const bool annotate = members.size() == recorder.rounds().size();
  for (std::size_t i = 0; i < recorder.rounds().size(); ++i) {
    const RoundSnapshot& snap = recorder.rounds()[i];
    if (annotate && !snap.json_line.empty() &&
        snap.json_line.back() == '}') {
      // Splice `, "attribution": {...}` inside the line's closing brace
      // (the line stays one JSON object per round).
      std::fprintf(f, "%.*s, \"attribution\": %s}\n",
                   static_cast<int>(snap.json_line.size() - 1),
                   snap.json_line.c_str(), members[i].c_str());
    } else {
      std::fprintf(f, "%s\n", snap.json_line.c_str());
    }
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace ekm
