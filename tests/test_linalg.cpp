// Tests for src/linalg: matrix algebra, symmetric eigendecomposition,
// SVD, pseudoinverse, QR. Property suites sweep shapes via TEST_P.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace ekm {
namespace {

double max_abs_diff(const Matrix& a, const Matrix& b) {
  return subtract(a, b).frobenius_norm();
}

TEST(Matrix, InitializerListAndAccess) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_THROW((void)m(2, 0), precondition_error);
  EXPECT_THROW((void)m(0, 3), precondition_error);
  EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), precondition_error);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng = make_rng(1);
  const Matrix m = Matrix::gaussian(7, 4, rng);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, MatmulAgainstHandComputed) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW((void)matmul(a, Matrix(3, 3)), precondition_error);
}

TEST(Matrix, FusedTransposeProductsMatchExplicit) {
  Rng rng = make_rng(2);
  const Matrix a = Matrix::gaussian(6, 3, rng);
  const Matrix b = Matrix::gaussian(6, 4, rng);
  EXPECT_LT(max_abs_diff(matmul_at_b(a, b), matmul(a.transposed(), b)), 1e-12);
  const Matrix c = Matrix::gaussian(5, 3, rng);
  EXPECT_LT(max_abs_diff(matmul_a_bt(a, c), matmul(a, c.transposed())), 1e-12);
}

TEST(Matrix, RowRangeAndFirstCols) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const Matrix mid = m.row_range(1, 3);
  EXPECT_EQ(mid.rows(), 2u);
  EXPECT_DOUBLE_EQ(mid(0, 0), 4.0);
  const Matrix left = m.first_cols(2);
  EXPECT_EQ(left.cols(), 2u);
  EXPECT_DOUBLE_EQ(left(2, 1), 8.0);
  EXPECT_THROW((void)m.first_cols(4), precondition_error);
  EXPECT_THROW((void)m.row_range(2, 1), precondition_error);
}

TEST(Matrix, AppendRows) {
  Matrix m{{1.0, 2.0}};
  m.append_rows(Matrix{{3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  Matrix empty;
  empty.append_rows(Matrix{{9.0}});
  EXPECT_EQ(empty.rows(), 1u);
  EXPECT_THROW(m.append_rows(Matrix(1, 3)), precondition_error);
}

TEST(Matrix, VectorHelpers) {
  const std::vector<double> a{3.0, 4.0};
  const std::vector<double> b{1.0, -1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), -1.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 4.0 + 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  const Matrix m{{1.0, 0.0}, {0.0, 2.0}};
  const std::vector<double> y = matvec(m, a);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0);
}

TEST(EigenSym, DiagonalMatrix) {
  const Matrix m{{3.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 2.0}};
  const SymmetricEigen eig = eigen_symmetric(m);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(EigenSym, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  const SymmetricEigen eig = eigen_symmetric(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-12);
}

class EigenSymProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSymProperty, ReconstructionOrthogonalityAndOrdering) {
  const std::size_t n = GetParam();
  Rng rng = make_rng(1000 + n);
  const Matrix a = Matrix::gaussian(n + 3, n, rng);
  const Matrix sym = matmul_at_b(a, a);  // PSD
  const SymmetricEigen eig = eigen_symmetric(sym);

  // Ordering (descending) and non-negativity for PSD input.
  for (std::size_t j = 0; j + 1 < n; ++j) {
    EXPECT_GE(eig.values[j], eig.values[j + 1] - 1e-9);
  }
  EXPECT_GE(eig.values[n - 1], -1e-8 * eig.values[0]);

  // V^T V = I.
  const Matrix vtv = matmul_at_b(eig.vectors, eig.vectors);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(n)), 1e-9);

  // A = V diag(λ) V^T.
  Matrix vl = eig.vectors;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) vl(i, j) *= eig.values[j];
  }
  const Matrix rec = matmul_a_bt(vl, eig.vectors);
  EXPECT_LT(max_abs_diff(rec, sym), 1e-8 * (1.0 + sym.frobenius_norm()));
}

TEST_P(EigenSymProperty, JacobiOracleAgrees) {
  const std::size_t n = GetParam();
  if (n > 24) GTEST_SKIP() << "Jacobi oracle kept small";
  Rng rng = make_rng(2000 + n);
  const Matrix a = Matrix::gaussian(n + 1, n, rng);
  const Matrix sym = matmul_at_b(a, a);
  const SymmetricEigen fast = eigen_symmetric(sym);
  const SymmetricEigen oracle = eigen_symmetric_jacobi(sym);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(fast.values[j], oracle.values[j],
                1e-8 * (1.0 + std::fabs(oracle.values[0])));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSymProperty,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 13, 24,
                                                        40, 64));

TEST(EigenSym, RejectsNonSquare) {
  EXPECT_THROW((void)eigen_symmetric(Matrix(2, 3)), precondition_error);
}

struct SvdShape {
  std::size_t rows;
  std::size_t cols;
};

class SvdProperty : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdProperty, ThinSvdAxioms) {
  const auto [n, d] = GetParam();
  Rng rng = make_rng(31 * n + d);
  const Matrix a = Matrix::gaussian(n, d, rng);
  const Svd s = thin_svd(a);
  const std::size_t r = std::min(n, d);
  ASSERT_EQ(s.rank(), r);

  // Reconstruction.
  EXPECT_LT(max_abs_diff(s.reconstruct(), a),
            1e-9 * (1.0 + a.frobenius_norm()));
  // Orthonormal factors.
  EXPECT_LT(max_abs_diff(matmul_at_b(s.u, s.u), Matrix::identity(r)), 1e-9);
  EXPECT_LT(max_abs_diff(matmul_at_b(s.v, s.v), Matrix::identity(r)), 1e-9);
  // Ordering and non-negativity.
  for (std::size_t j = 0; j + 1 < r; ++j) {
    EXPECT_GE(s.sigma[j], s.sigma[j + 1] - 1e-12);
  }
  EXPECT_GE(s.sigma[r - 1], 0.0);
  // Energy identity: ||A||_F^2 = sum sigma_j^2.
  double energy = 0.0;
  for (double sv : s.sigma) energy += sv * sv;
  EXPECT_NEAR(energy, a.frobenius_norm() * a.frobenius_norm(),
              1e-7 * (1.0 + energy));
}

TEST_P(SvdProperty, PseudoinversePenroseAxioms) {
  const auto [n, d] = GetParam();
  Rng rng = make_rng(77 * n + d);
  const Matrix a = Matrix::gaussian(n, d, rng);
  const Matrix ap = pseudoinverse(a);
  EXPECT_EQ(ap.rows(), d);
  EXPECT_EQ(ap.cols(), n);
  const double scale = 1.0 + a.frobenius_norm();
  // 1) A A+ A = A;  2) A+ A A+ = A+.
  EXPECT_LT(max_abs_diff(matmul(matmul(a, ap), a), a), 1e-8 * scale);
  EXPECT_LT(max_abs_diff(matmul(matmul(ap, a), ap), ap), 1e-8 * scale);
  // 3) (A A+)^T = A A+;  4) (A+ A)^T = A+ A.
  const Matrix aap = matmul(a, ap);
  const Matrix apa = matmul(ap, a);
  EXPECT_LT(max_abs_diff(aap, aap.transposed()), 1e-8 * scale);
  EXPECT_LT(max_abs_diff(apa, apa.transposed()), 1e-8 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(SvdShape{1, 1}, SvdShape{5, 5}, SvdShape{20, 5},
                      SvdShape{5, 20}, SvdShape{40, 17}, SvdShape{17, 40},
                      SvdShape{64, 64}));

TEST(Svd, RankDeficientInput) {
  // Rank-1 matrix: outer product.
  Matrix a(6, 4);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = static_cast<double>(i + 1) * static_cast<double>(j + 1);
    }
  }
  const Svd s = thin_svd(a);
  EXPECT_GT(s.sigma[0], 0.0);
  for (std::size_t j = 1; j < s.rank(); ++j) {
    EXPECT_LT(s.sigma[j], 1e-8 * s.sigma[0]);
  }
  EXPECT_LT(max_abs_diff(s.reconstruct(), a), 1e-9 * (1.0 + a.frobenius_norm()));
  // Pseudoinverse of rank-deficient input still satisfies A A+ A = A.
  const Matrix ap = pseudoinverse(a);
  EXPECT_LT(max_abs_diff(matmul(matmul(a, ap), a), a),
            1e-8 * (1.0 + a.frobenius_norm()));
}

TEST(Svd, TruncationKeepsTopComponents) {
  Rng rng = make_rng(5);
  const Matrix a = Matrix::gaussian(30, 10, rng);
  const Svd full = thin_svd(a);
  const Svd trunc = truncated_svd(a, 3);
  ASSERT_EQ(trunc.rank(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(trunc.sigma[j], full.sigma[j], 1e-10);
  }
  // Truncated reconstruction is the best rank-3 approximation: its error
  // equals the discarded energy (Eckart–Young).
  double tail = 0.0;
  for (std::size_t j = 3; j < full.rank(); ++j) {
    tail += full.sigma[j] * full.sigma[j];
  }
  const double err = subtract(trunc.reconstruct(), a).frobenius_norm();
  EXPECT_NEAR(err * err, tail, 1e-6 * (1.0 + tail));
}

TEST(Svd, RandomizedSvdApproximatesDominantSpectrum) {
  Rng rng = make_rng(6);
  // Construct a matrix with fast spectral decay so the sketch is accurate.
  Matrix a = Matrix::gaussian(80, 40, rng);
  const Svd base = thin_svd(a);
  Matrix scaled_u = base.u;
  for (std::size_t i = 0; i < scaled_u.rows(); ++i) {
    for (std::size_t j = 0; j < scaled_u.cols(); ++j) {
      scaled_u(i, j) *= base.sigma[j] * std::pow(0.5, static_cast<double>(j));
    }
  }
  const Matrix decayed = matmul_a_bt(scaled_u, base.v);
  const Svd exact = thin_svd(decayed);
  Rng rng2 = make_rng(7);
  const Svd approx = randomized_svd(decayed, 5, rng2);
  ASSERT_EQ(approx.rank(), 5u);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(approx.sigma[j], exact.sigma[j], 1e-6 * (1.0 + exact.sigma[0]));
  }
}

TEST(Svd, HouseholderQOrthonormal) {
  Rng rng = make_rng(8);
  for (auto [n, d] : {std::pair<std::size_t, std::size_t>{10, 4},
                      {4, 10},
                      {16, 16}}) {
    const Matrix a = Matrix::gaussian(n, d, rng);
    const Matrix q = householder_q(a);
    const std::size_t r = std::min(n, d);
    EXPECT_EQ(q.rows(), n);
    EXPECT_EQ(q.cols(), r);
    EXPECT_LT(max_abs_diff(matmul_at_b(q, q), Matrix::identity(r)), 1e-10);
    // Q spans the column space: Q Q^T A = A when n <= d (full row rank).
    if (n <= d) {
      const Matrix qqta = matmul(q, matmul_at_b(q, a));
      EXPECT_LT(max_abs_diff(qqta, a), 1e-9 * (1.0 + a.frobenius_norm()));
    }
  }
}

TEST(Svd, EmptyMatrixRejected) {
  EXPECT_THROW((void)thin_svd(Matrix()), precondition_error);
}

}  // namespace
}  // namespace ekm
