// Wall-clock timer used to report the "complexity at the data source"
// metric of the paper (running time of the DR/CR/QT steps).
#pragma once

#include <chrono>

namespace ekm {

/// Monotonic stopwatch. Starts on construction; `seconds()` reads the
/// elapsed time without stopping; `restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across multiple scoped measurement windows. Used by
/// the experiment runner to sum the device-side work of a multi-step
/// pipeline while excluding server-side work.
class Stopwatch {
 public:
  /// RAII window: adds the elapsed time to the owning stopwatch on exit.
  class Scope {
   public:
    explicit Scope(Stopwatch& owner) : owner_(owner) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { owner_.total_ += timer_.seconds(); }

   private:
    Stopwatch& owner_;
    Timer timer_;
  };

  [[nodiscard]] Scope measure() { return Scope(*this); }
  [[nodiscard]] double total_seconds() const { return total_; }
  void reset() { total_ = 0.0; }

 private:
  double total_ = 0.0;
};

}  // namespace ekm
